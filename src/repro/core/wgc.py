"""Watermark generation circuit (WGC).

The WGC is the only part of the watermark hardware the proposed technique
keeps.  It produces the periodic binary watermark sequence ``WMARK`` that
either enables the load circuit (baseline architecture) or drives the
enable inputs of existing integrated clock gates (proposed architecture).

Two variants matter for the paper's numbers:

* the *minimal* WGC used in the area analysis of Section V -- just the
  12-bit maximum-length LFSR, i.e. 12 registers;
* the *test-chip* WGC (Fig. 4(a)) -- two 32-bit sequence generators plus
  configuration/control logic, of which a single generator configured as a
  12-bit LFSR is used during the experiments.  Its (larger) dynamic power
  is what makes the load circuit "only" 95.6%-98% of the total watermark
  dynamic power in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.lfsr import LFSR, CircularShiftRegister, SequenceGenerator
from repro.rtl.activity import ActivityRecord
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE, CombinationalBlock


class WatermarkGenerationCircuit:
    """Generates the watermark sequence ``WMARK``.

    Parameters
    ----------
    generators:
        The sequence generators physically present in the circuit.  Only
        ``generators[active_index]`` contributes to the output; the others
        are assumed clock-gated off (they still leak and occupy area).
    active_index:
        Which generator drives the ``WMARK`` output.
    control_gates:
        Size of the configuration/control glue logic in NAND2-equivalents.
    always_clocked_registers:
        Registers (e.g. configuration registers) whose clock is never gated;
        they add clock-buffer power every cycle.
    name:
        Instance name.
    """

    def __init__(
        self,
        generators: List[SequenceGenerator],
        active_index: int = 0,
        control_gates: int = 8,
        always_clocked_registers: int = 0,
        name: str = "wgc",
    ) -> None:
        if not generators:
            raise ValueError("WGC needs at least one sequence generator")
        if not 0 <= active_index < len(generators):
            raise ValueError("active_index outside the generator list")
        self.name = name
        self.generators = generators
        self.active_index = active_index
        self.control = CombinationalBlock(
            f"{name}/control", gate_count=max(1, control_gates), activity_factor=0.1
        )
        self.always_clocked_registers = always_clocked_registers
        self._wmark = self.active_generator.output_bit

    # -- constructors -----------------------------------------------------

    @classmethod
    def minimal(cls, width: int = 12, seed: int = 1, name: str = "wgc") -> "WatermarkGenerationCircuit":
        """The minimal WGC of the area analysis: a single ``width``-bit LFSR."""
        return cls(
            generators=[LFSR(width=width, seed=seed, name=f"{name}/lfsr")],
            control_gates=4,
            always_clocked_registers=0,
            name=name,
        )

    @classmethod
    def test_chip(
        cls,
        active_width: int = 12,
        seed: int = 1,
        name: str = "wgc",
    ) -> "WatermarkGenerationCircuit":
        """The WGC embedded in the paper's test chips (Fig. 4(a)).

        Two 32-bit sequence generators are present; a single one is used,
        configured as an ``active_width``-bit maximum-length LFSR.  The
        unused stages of the active generator remain clocked (they are part
        of the same 32-bit register), which is modelled by
        ``always_clocked_registers``.
        """
        active = LFSR(width=active_width, seed=seed, name=f"{name}/lfsr0")
        spare = CircularShiftRegister(pattern=0xAAAAAAAA, width=32, name=f"{name}/gen1")
        return cls(
            generators=[active, spare],
            active_index=0,
            control_gates=24,
            always_clocked_registers=32 - active_width + 8,
            name=name,
        )

    # -- structural properties ---------------------------------------------

    @property
    def active_generator(self) -> SequenceGenerator:
        """The sequence generator currently driving ``WMARK``."""
        return self.generators[self.active_index]

    @property
    def wmark(self) -> int:
        """Current value of the watermark output signal."""
        return self._wmark

    @property
    def period(self) -> int:
        """Period of the watermark sequence."""
        return self.active_generator.period

    @property
    def register_count(self) -> int:
        """Total flip-flop count of the WGC (all generators plus config)."""
        generators = sum(g.register_count for g in self.generators)
        return generators + self.always_clocked_registers

    @property
    def active_register_count(self) -> int:
        """Flip-flops that are clocked during watermark operation."""
        return self.active_generator.register_count + self.always_clocked_registers

    @property
    def cell_count(self) -> int:
        """Library cell count (registers plus control gates)."""
        return self.register_count + self.control.gate_count

    def cell_inventory(self) -> Dict[str, int]:
        """Cell counts per library class, for leakage and area estimation."""
        return {"dff": self.register_count, "comb": self.control.gate_count}

    # -- behaviour ----------------------------------------------------------

    def reset(self) -> None:
        """Reset every generator to its seed state."""
        for generator in self.generators:
            generator.reset()
        self._wmark = self.active_generator.output_bit

    def step(self, clock_enabled: bool = True) -> Tuple[int, ActivityRecord]:
        """Advance the WGC one clock cycle.

        Returns the new ``WMARK`` bit and the WGC's own switching activity
        (active generator, always-clocked configuration registers and a
        small amount of control-logic activity).
        """
        if not clock_enabled:
            return self._wmark, ActivityRecord()
        bit, generator_activity = self.active_generator.step()
        self._wmark = bit
        config_activity = ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * self.always_clocked_registers
        )
        control_activity = self.control.step(active=True)
        return self._wmark, generator_activity + config_activity + control_activity

    def sequence(self, length: Optional[int] = None) -> np.ndarray:
        """The watermark sequence as a numpy array of 0/1 values.

        This is the model vector ``X`` the CPA detector correlates against
        (after the detector's own rotation handling).
        """
        return self.active_generator.sequence(length)
