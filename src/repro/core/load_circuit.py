"""Baseline load circuit (the state of the art the paper improves on).

In the reference power-watermark architecture (Fig. 1(a); Becker et al.
HOST'10, Ziener et al. FPT'06) the watermark power pattern is produced by a
dedicated *load circuit*: a bank of shift registers initialised with the
alternating ``1010...`` pattern whose shift-enable is driven by ``WMARK``.
While ``WMARK`` is high every register bit flips every cycle, maximising
dynamic power; while it is low the circuit is idle.

The load circuit is pure overhead -- its size scales with the host system
because the watermark power must stay detectable above the system's
background noise -- and that is exactly the cost the clock-modulation
technique removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.power.library import (
    PAPER_CLOCK_BUFFER_POWER_W,
    PAPER_DATA_SWITCHING_POWER_W,
)
from repro.rtl.activity import ActivityRecord, ZERO_ACTIVITY
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE, ShiftRegister


def registers_for_load_power(
    load_power_w: float,
    clock_buffer_power_w: float = PAPER_CLOCK_BUFFER_POWER_W,
    data_switching_power_w: float = PAPER_DATA_SWITCHING_POWER_W,
) -> int:
    """Number of load-circuit registers needed for a target dynamic power.

    This is the sizing rule of Table II:

    ``N = P_load / (P_data + P_clock) = P_load / (1.126 uW + 1.476 uW)``

    because every register in the load circuit both flips its data and
    toggles its clock buffer each enabled cycle.
    """
    if load_power_w <= 0:
        raise ValueError("load power must be positive")
    per_register = clock_buffer_power_w + data_switching_power_w
    return int(load_power_w / per_register)


class LoadCircuit:
    """A bank of shift registers acting as the watermark load.

    Parameters
    ----------
    num_registers:
        Total number of flip-flops in the load circuit.
    word_width:
        Width of each shift-register word (8 bits in the paper's Fig. 2
        illustration, 16 bits per LUT in the FPGA prior work).
    name:
        Instance name.
    """

    def __init__(self, num_registers: int = 576, word_width: int = 8, name: str = "load") -> None:
        if num_registers <= 0:
            raise ValueError("load circuit needs at least one register")
        if word_width <= 0:
            raise ValueError("word width must be positive")
        self.name = name
        self.word_width = word_width
        self.num_registers = num_registers
        self.words: List[ShiftRegister] = []
        remaining = num_registers
        index = 0
        while remaining > 0:
            width = min(word_width, remaining)
            self.words.append(ShiftRegister(f"{name}/sr{index}", width=width, circular=True))
            remaining -= width
            index += 1

    @classmethod
    def sized_for_power(
        cls, load_power_w: float, word_width: int = 8, name: str = "load"
    ) -> "LoadCircuit":
        """Build a load circuit sized for a target detectable dynamic power."""
        return cls(
            num_registers=registers_for_load_power(load_power_w),
            word_width=word_width,
            name=name,
        )

    # -- structural properties ---------------------------------------------

    @property
    def register_count(self) -> int:
        """Total number of flip-flops."""
        return self.num_registers

    @property
    def cell_count(self) -> int:
        """Library cell count (one DFF per bit)."""
        return self.num_registers

    def cell_inventory(self) -> Dict[str, int]:
        """Cell counts per library class."""
        return {"dff": self.num_registers}

    # -- behaviour ------------------------------------------------------------

    def reset(self) -> None:
        """Re-initialise every word with the alternating pattern."""
        for word in self.words:
            word.reset()

    def step(self, wmark: int) -> ActivityRecord:
        """Advance the load circuit one cycle with the given ``WMARK`` bit.

        When ``WMARK`` is 1 every register shifts: all clock buffers toggle
        and, thanks to the alternating initialisation, every bit flips.
        When ``WMARK`` is 0 the shift-enable is low and the circuit is idle.
        """
        if not wmark:
            return ZERO_ACTIVITY
        total = ZERO_ACTIVITY
        for word in self.words:
            total = total + word.shift(enable=True)
        return total

    def expected_active_activity(self) -> ActivityRecord:
        """Activity of one enabled cycle, for analytical power estimates."""
        return ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * self.num_registers,
            data_toggles=self.num_registers,
        )
