"""Multiple independent watermarks on one die.

The paper notes that "various top level IP modules or lower level sub-modules
can be modulated" and that the test-chip WGC already contains two sequence
generators.  In a realistic SoC several IP vendors may each embed their own
clock-modulation watermark; auditing the finished product then means testing
the measured power trace against *each* vendor's model sequence.

For CPA to tell the watermarks apart their sequences must be genuinely
different -- two maximum-length LFSRs of the same width and polynomial only
differ by a rotation, which CPA cannot distinguish.  :class:`MultiWatermarkSystem`
therefore requires each watermark to use a distinct LFSR width (and hence a
distinct period) or a distinct tap set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.architectures import ClockModulationWatermark, WatermarkArchitecture
from repro.core.config import DetectionConfig
from repro.detection.cpa import CPADetector, CPAResult
from repro.power.estimator import PowerEstimator
from repro.power.trace import PowerTrace


@dataclass(frozen=True)
class VendorWatermark:
    """One vendor's watermark embedded in one sub-module."""

    vendor: str
    watermark: WatermarkArchitecture

    @property
    def sequence_signature(self) -> Tuple[int, Tuple[int, ...]]:
        """(width, taps) pair identifying the sequence family."""
        generator = self.watermark.wgc.active_generator
        taps = tuple(getattr(generator, "taps", ()))
        return generator.width, taps


class MultiWatermarkSystem:
    """A set of independent watermarks sharing one supply rail."""

    def __init__(self, vendors: Sequence[VendorWatermark]) -> None:
        if not vendors:
            raise ValueError("a multi-watermark system needs at least one watermark")
        names = [v.vendor for v in vendors]
        if len(set(names)) != len(names):
            raise ValueError("vendor names must be unique")
        signatures = [v.sequence_signature for v in vendors]
        if len(set(signatures)) != len(signatures):
            raise ValueError(
                "each vendor must use a distinct LFSR width or tap set; identical "
                "maximum-length sequences only differ by a rotation and cannot be "
                "told apart by CPA"
            )
        self.vendors: List[VendorWatermark] = list(vendors)

    @classmethod
    def with_distinct_lfsr_widths(
        cls,
        vendor_names: Sequence[str],
        widths: Optional[Sequence[int]] = None,
        modulated_registers: int = 1024,
    ) -> "MultiWatermarkSystem":
        """Convenience constructor giving each vendor its own LFSR width."""
        if widths is None:
            widths = [12 - i for i in range(len(vendor_names))]
        if len(widths) != len(vendor_names):
            raise ValueError("need one LFSR width per vendor")
        vendors = []
        for name, width in zip(vendor_names, widths):
            watermark = ClockModulationWatermark.reusing_ip_block(
                modulated_registers=modulated_registers,
                config=None,
                name=f"wm_{name}",
            )
            # Rebuild the WGC with the requested width (reusing_ip_block uses
            # the default config width).
            from repro.core.wgc import WatermarkGenerationCircuit

            watermark.wgc = WatermarkGenerationCircuit.minimal(width=width, seed=1, name=f"wgc_{name}")
            vendors.append(VendorWatermark(vendor=name, watermark=watermark))
        return cls(vendors)

    def __len__(self) -> int:
        return len(self.vendors)

    def vendor(self, name: str) -> VendorWatermark:
        """Look up one vendor's watermark."""
        for vendor in self.vendors:
            if vendor.vendor == name:
                return vendor
        raise KeyError(f"no watermark registered for vendor {name!r}")

    def combined_power_trace(
        self,
        estimator: PowerEstimator,
        num_cycles: int,
        active_vendors: Optional[Sequence[str]] = None,
        phase_offsets: Optional[Dict[str, int]] = None,
    ) -> PowerTrace:
        """Sum of the power traces of the selected vendors' watermarks."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        active = set(active_vendors) if active_vendors is not None else {v.vendor for v in self.vendors}
        unknown = active - {v.vendor for v in self.vendors}
        if unknown:
            raise KeyError(f"unknown vendors: {sorted(unknown)}")
        phase_offsets = phase_offsets or {}
        total: Optional[PowerTrace] = None
        for vendor in self.vendors:
            if vendor.vendor not in active:
                continue
            trace = vendor.watermark.power_trace(estimator, num_cycles)
            offset = int(phase_offsets.get(vendor.vendor, 0))
            if offset:
                trace = PowerTrace(
                    name=trace.name,
                    clock=trace.clock,
                    power_w=np.roll(trace.power_w, -offset),
                    voltage_v=trace.voltage_v,
                )
            total = trace if total is None else total.add(trace)
        if total is None:
            # No active vendor: an all-zero trace at the estimator's clock.
            total = PowerTrace(
                name="no_watermark",
                clock=estimator.operating_point.clock,
                power_w=np.zeros(num_cycles),
                voltage_v=estimator.operating_point.voltage_v,
            )
        return total

    def audit(
        self,
        measured: np.ndarray,
        detection_config: Optional[DetectionConfig] = None,
    ) -> Dict[str, CPAResult]:
        """Test the measured trace against every vendor's model sequence.

        Returns one CPA result per vendor; a vendor's IP is considered
        present when its result reports a detection.
        """
        detector = CPADetector(detection_config or DetectionConfig())
        results: Dict[str, CPAResult] = {}
        for vendor in self.vendors:
            sequence = vendor.watermark.sequence()
            results[vendor.vendor] = detector.detect(sequence, measured)
        return results

    def detected_vendors(
        self,
        measured: np.ndarray,
        detection_config: Optional[DetectionConfig] = None,
    ) -> List[str]:
        """Names of the vendors whose watermark is detected in the trace."""
        return [
            name
            for name, result in self.audit(measured, detection_config).items()
            if result.detected
        ]
