"""Watermarking core: the paper's contribution and its baseline.

Two architectures are implemented (Fig. 1 of the paper):

* :class:`BaselineWatermark` -- the state-of-the-art power watermark
  (Becker et al. HOST'10, Ziener et al. FPT'06): a small watermark
  generation circuit (WGC) drives the shift-enable of a large *load
  circuit* whose shift activity produces the power pattern.
* :class:`ClockModulationWatermark` -- the proposed scheme: the WGC output
  modulates the enable of existing integrated clock gates (ICGs), so the
  clock tree of an existing (or redundant) clock-gated register bank
  produces the power pattern and the load circuit disappears.
"""

from repro.core.lfsr import (
    LFSR,
    CircularShiftRegister,
    SequenceGenerator,
    max_length_taps,
    max_length_period,
)
from repro.core.wgc import WatermarkGenerationCircuit
from repro.core.load_circuit import LoadCircuit, registers_for_load_power
from repro.core.clock_modulation import ClockModulatedBank, ClockModulatedIPBlock
from repro.core.architectures import (
    WatermarkArchitecture,
    BaselineWatermark,
    ClockModulationWatermark,
)
from repro.core.config import (
    WatermarkConfig,
    MeasurementConfig,
    DetectionConfig,
    ExperimentConfig,
)
from repro.core.embedding import EmbeddedWatermark, embed_baseline, embed_clock_modulation
from repro.core.multi import MultiWatermarkSystem, VendorWatermark
from repro.core.sequence_design import (
    SequenceRecommendation,
    autocorrelation_sidelobe,
    is_good_watermark_sequence,
    periodic_autocorrelation,
    recommend_lfsr_width,
)

__all__ = [
    "MultiWatermarkSystem",
    "VendorWatermark",
    "SequenceRecommendation",
    "autocorrelation_sidelobe",
    "is_good_watermark_sequence",
    "periodic_autocorrelation",
    "recommend_lfsr_width",
    "LFSR",
    "CircularShiftRegister",
    "SequenceGenerator",
    "max_length_taps",
    "max_length_period",
    "WatermarkGenerationCircuit",
    "LoadCircuit",
    "registers_for_load_power",
    "ClockModulatedBank",
    "ClockModulatedIPBlock",
    "WatermarkArchitecture",
    "BaselineWatermark",
    "ClockModulationWatermark",
    "WatermarkConfig",
    "MeasurementConfig",
    "DetectionConfig",
    "ExperimentConfig",
    "EmbeddedWatermark",
    "embed_baseline",
    "embed_clock_modulation",
]
