"""Watermark sequence design helpers.

The paper fixes one design point (a 12-bit maximum-length LFSR detected over
300,000 cycles).  An IP vendor adopting the technique has to answer two
questions this module automates:

* *Is my sequence a good CPA model?*  Maximum-length sequences have an
  almost ideal two-valued periodic autocorrelation, which is exactly why a
  single rotation peak appears in the spread spectrum; the helpers quantify
  that for any candidate sequence.
* *How wide should the LFSR be?*  The period must exceed the phase
  uncertainty (every rotation is tested, so a longer period costs detection
  margin through the extreme-value statistics of the noise floor) yet the
  sequence must repeat often enough inside the acquisition window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.lfsr import LFSR, max_length_period
from repro.detection.metrics import estimate_required_cycles, expected_correlation


def periodic_autocorrelation(sequence: np.ndarray) -> np.ndarray:
    """Periodic (circular) autocorrelation of a 0/1 sequence in +/-1 form.

    For a maximum-length sequence of period ``L`` the result is ``1`` at lag
    0 and ``-1/L`` at every other lag -- the property that guarantees a
    single resolvable CPA peak.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    if sequence.ndim != 1 or len(sequence) < 2:
        raise ValueError("sequence must be a 1-D vector of at least two cycles")
    bipolar = 2.0 * sequence - 1.0
    spectrum = np.fft.rfft(bipolar)
    correlation = np.fft.irfft(spectrum * np.conj(spectrum), n=len(bipolar))
    return correlation / len(bipolar)


def autocorrelation_sidelobe(sequence: np.ndarray) -> float:
    """Largest off-peak |autocorrelation| of the sequence (lower is better)."""
    correlation = periodic_autocorrelation(sequence)
    if len(correlation) < 2:
        return 0.0
    return float(np.max(np.abs(correlation[1:])))


def is_good_watermark_sequence(sequence: np.ndarray, max_sidelobe: float = 0.1) -> bool:
    """Whether a sequence has a sharp enough autocorrelation for CPA.

    Also requires a reasonably balanced duty cycle, since a strongly biased
    sequence wastes watermark power without adding correlation signal.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    duty = float(sequence.mean())
    return autocorrelation_sidelobe(sequence) <= max_sidelobe and 0.3 <= duty <= 0.7


@dataclass(frozen=True)
class SequenceRecommendation:
    """Outcome of the LFSR width selection."""

    width: int
    period: int
    expected_rho: float
    required_cycles: int
    acquisition_cycles: int

    @property
    def repetitions_in_acquisition(self) -> float:
        """How many times the sequence repeats inside the acquisition."""
        return self.acquisition_cycles / self.period

    @property
    def feasible(self) -> bool:
        """Whether the acquisition budget suffices for reliable detection."""
        return self.acquisition_cycles >= self.required_cycles and self.repetitions_in_acquisition >= 2


def recommend_lfsr_width(
    watermark_amplitude_w: float,
    noise_sigma_w: float,
    acquisition_cycles: int = 300_000,
    candidate_widths: Sequence[int] = tuple(range(8, 21)),
    confidence_sigma: float = 4.0,
) -> SequenceRecommendation:
    """Pick the widest feasible maximum-length LFSR for a power/noise budget.

    A wider LFSR (longer period) makes brute-force guessing of the sequence
    harder and lowers the chance of accidental correlation with periodic
    system activity, so the recommendation prefers the widest width whose
    period still fits the acquisition at the required confidence.
    """
    if acquisition_cycles <= 0:
        raise ValueError("acquisition_cycles must be positive")
    if not candidate_widths:
        raise ValueError("at least one candidate width is required")
    rho = expected_correlation(watermark_amplitude_w, noise_sigma_w)
    if not 0.0 < rho < 1.0:
        raise ValueError("the watermark is either undetectable or noise-free; check the inputs")

    best: Optional[SequenceRecommendation] = None
    for width in sorted(candidate_widths):
        period = max_length_period(width)
        required = estimate_required_cycles(rho, period, confidence_sigma)
        candidate = SequenceRecommendation(
            width=width,
            period=period,
            expected_rho=rho,
            required_cycles=required,
            acquisition_cycles=acquisition_cycles,
        )
        if candidate.feasible:
            best = candidate
    if best is not None:
        return best
    # Nothing feasible: return the narrowest candidate so the caller can see
    # how far off the budget is.
    width = min(candidate_widths)
    period = max_length_period(width)
    return SequenceRecommendation(
        width=width,
        period=period,
        expected_rho=rho,
        required_cycles=estimate_required_cycles(rho, period, confidence_sigma),
        acquisition_cycles=acquisition_cycles,
    )


def build_recommended_lfsr(recommendation: SequenceRecommendation, seed: int = 1) -> LFSR:
    """Instantiate the LFSR selected by :func:`recommend_lfsr_width`."""
    return LFSR(width=recommendation.width, seed=seed)
