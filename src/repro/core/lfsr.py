"""Watermark sequence generators.

The watermark generation circuit in the paper's test chips contains two
32-bit sequence generators configurable as either Linear Feedback Shift
Registers or simple circular shift registers; the experiments use a single
generator configured as a 12-bit maximum-length LFSR (period 4,095).

Both generator types are implemented here.  Each ``step`` advances the
register one clock cycle, returns the output watermark bit and records the
switching activity of the generator itself (clock pins, data flips and the
XOR feedback gates), which the power estimator turns into the WGC's share
of the watermark dynamic power (the "Total Watermark Dynamic Power" column
of Table I).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rtl.activity import ActivityRecord
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE
from repro.rtl.signals import hamming_distance

#: Feedback taps producing maximum-length sequences for Fibonacci LFSRs.
#: Taps are 1-indexed from the output stage, as conventionally tabulated.
_MAX_LENGTH_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
}


def max_length_taps(width: int) -> Tuple[int, ...]:
    """Feedback taps that give a maximum-length sequence for ``width`` bits."""
    if width not in _MAX_LENGTH_TAPS:
        raise ValueError(
            f"no maximum-length tap set tabulated for width {width}; "
            f"supported widths: {sorted(_MAX_LENGTH_TAPS)}"
        )
    return _MAX_LENGTH_TAPS[width]


# -- closed-form (vectorised) sequence generation ---------------------------
#
# The trace-synthesis fast path (repro.power.synthesis) needs watermark
# sequences without paying one Python ``step()`` per bit.  The generators
# below produce arrays that are bit-identical to stepping the registers;
# the per-cycle ``stepped_sequence`` implementation stays as the golden
# reference and the equivalence is pinned by property tests for every
# tabulated width.

#: Cache of generated output sequences keyed by generator configuration.
_SEQUENCE_CACHE: Dict[Tuple, np.ndarray] = {}

#: Longest sequence kept in the cache (int8 entries, so 4 MiB per entry cap).
_SEQUENCE_CACHE_MAX_LENGTH = 1 << 22


def clear_sequence_cache() -> None:
    """Drop all cached closed-form sequences (used by tests)."""
    _SEQUENCE_CACHE.clear()


def _galois_feedback_mask(width: int, taps: Tuple[int, ...]) -> int:
    """Feedback mask of the Galois register (see :class:`LFSR`)."""
    mask = 1 << (width - 1)
    for tap in taps:
        if tap != width:
            mask |= 1 << (tap - 1)
    return mask


def galois_sequence_bits(
    width: int, seed: int, taps: Tuple[int, ...], length: int
) -> np.ndarray:
    """Closed-form Galois LFSR output, bit-identical to per-bit stepping.

    The output stream of the right-shifting Galois register implemented by
    :class:`LFSR` satisfies the GF(2) linear recurrence

    ``s[n] = XOR over t in taps of s[n - t]``

    (the recurrence of the reciprocal feedback polynomial).  Squaring the
    polynomial doubles every lag while keeping the term count, so after
    bootstrapping ``2 * width`` bits with the plain state transition the
    rest of the array is filled with O(len(taps) * width * log(length))
    vectorised block XORs instead of one Python iteration per bit.
    """
    if length <= 0:
        raise ValueError("sequence length must be positive")
    mask = (1 << width) - 1
    seed &= mask
    if seed == 0:
        raise ValueError("LFSR seed must be non-zero")
    feedback = _galois_feedback_mask(width, taps)
    bits = np.empty(length, dtype=np.int8)
    # Bootstrap enough bits for the doubled recurrences to take over.
    state = seed
    boot = min(length, 2 * width)
    for i in range(boot):
        bits[i] = state & 1
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= feedback
    filled = boot
    lags = sorted(set(taps))
    min_lag = lags[0]
    while filled < length:
        # Largest squaring level whose longest lag (scale * width) is known.
        scale = 1
        while 2 * scale * width <= filled:
            scale *= 2
        block = min(scale * min_lag, length - filled)
        start = filled - scale * lags[0]
        acc = bits[start : start + block].copy()
        for tap in lags[1:]:
            start = filled - scale * tap
            np.bitwise_xor(acc, bits[start : start + block], out=acc)
        bits[filled : filled + block] = acc
        filled += block
    return bits


def circular_shift_sequence_bits(pattern: int, width: int, length: int) -> np.ndarray:
    """Closed-form circular-shift-register output (the pattern, repeated)."""
    if length <= 0:
        raise ValueError("sequence length must be positive")
    pattern &= (1 << width) - 1
    stages = np.array([(pattern >> i) & 1 for i in range(width)], dtype=np.int8)
    return stages[np.arange(length, dtype=np.int64) % width]


def _cached_sequence_bits(key: Tuple, length: int, generate) -> np.ndarray:
    """Serve ``length`` bits from the cache, generating/extending as needed.

    The cache stores the longest sequence generated so far per
    configuration; shorter requests are prefix slices.  No periodicity is
    assumed (non-maximum-length tap sets may have a shorter true period
    than the nominal one), so extensions regenerate from the recurrence.
    """
    cached = _SEQUENCE_CACHE.get(key)
    if cached is None or len(cached) < length:
        cached = generate(length)
        if length <= _SEQUENCE_CACHE_MAX_LENGTH:
            _SEQUENCE_CACHE[key] = cached
    return cached[:length].copy()


def max_length_period(width: int) -> int:
    """Period of a maximum-length sequence of the given register width."""
    if width < 2:
        raise ValueError("LFSR width must be at least 2")
    return (1 << width) - 1


class SequenceGenerator(abc.ABC):
    """Common interface of watermark sequence generators."""

    def __init__(self, name: str, width: int) -> None:
        if width < 2:
            raise ValueError("sequence generator width must be at least 2")
        self.name = name
        self.width = width

    @property
    @abc.abstractmethod
    def period(self) -> int:
        """Length of the generated periodic sequence."""

    @property
    @abc.abstractmethod
    def output_bit(self) -> int:
        """Current output (watermark) bit."""

    @abc.abstractmethod
    def step(self, clock_enabled: bool = True) -> Tuple[int, ActivityRecord]:
        """Advance one cycle; return the new output bit and the activity."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Return to the seed state."""

    @property
    def register_count(self) -> int:
        """Number of flip-flops in the generator."""
        return self.width

    def sequence(self, length: Optional[int] = None) -> np.ndarray:
        """Generate ``length`` output bits (default: one full period).

        Served by the closed-form vectorised generator (cached per
        generator configuration) when the subclass provides one; the
        bits are identical to :meth:`stepped_sequence`, which remains the
        cycle-accurate golden reference.  The generator state is never
        perturbed by either path.
        """
        if length is None:
            length = self.period
        if length <= 0:
            raise ValueError("sequence length must be positive")
        bits = self._closed_form_sequence(length)
        if bits is not None:
            return bits
        return self.stepped_sequence(length)

    def stepped_sequence(self, length: Optional[int] = None) -> np.ndarray:
        """Generate ``length`` output bits by stepping one cycle at a time.

        This is the golden reference for the closed-form fast path.  The
        generator state is saved and restored, so calling this does not
        perturb an ongoing simulation.
        """
        if length is None:
            length = self.period
        if length <= 0:
            raise ValueError("sequence length must be positive")
        saved = self._save_state()
        self.reset()
        bits = np.empty(length, dtype=np.int8)
        bits[0] = self.output_bit
        for i in range(1, length):
            bit, _ = self.step()
            bits[i] = bit
        self._restore_state(saved)
        return bits

    def _closed_form_sequence(self, length: int) -> Optional[np.ndarray]:
        """Vectorised sequence generation; ``None`` defers to stepping."""
        return None

    @abc.abstractmethod
    def _save_state(self):
        """Snapshot internal state (used by :meth:`sequence`)."""

    @abc.abstractmethod
    def _restore_state(self, state) -> None:
        """Restore a snapshot taken by :meth:`_save_state`."""


class LFSR(SequenceGenerator):
    """Galois linear feedback shift register.

    The feedback taps are the exponents of a primitive polynomial
    ``x^n + ... + 1``; with a primitive polynomial the register cycles
    through all ``2^n - 1`` non-zero states, so the output is a
    maximum-length sequence of period ``2^n - 1``.

    Parameters
    ----------
    width:
        Number of stages.
    seed:
        Initial state; must be non-zero (the all-zero state is the lock-up
        state of an XOR-feedback LFSR).
    taps:
        1-indexed taps of the feedback polynomial (excluding the constant
        term).  Defaults to a tabulated maximum-length set.
    """

    def __init__(
        self,
        width: int = 12,
        seed: int = 1,
        taps: Optional[Tuple[int, ...]] = None,
        name: str = "lfsr",
    ) -> None:
        super().__init__(name=name, width=width)
        mask = (1 << width) - 1
        seed &= mask
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.seed = seed
        self.state = seed
        self.taps = tuple(taps) if taps is not None else max_length_taps(width)
        for tap in self.taps:
            if not 1 <= tap <= width:
                raise ValueError(f"tap {tap} outside valid range [1, {width}]")
        if width not in self.taps:
            raise ValueError(
                f"the tap set must include the register width {width} "
                f"(the x^{width} term of the feedback polynomial)"
            )
        # Galois feedback mask: the x^width term corresponds to the bit that
        # is shifted out, so it is excluded; the constant term (x^0) injects
        # into the most significant stage.
        self._feedback_mask = 1 << (width - 1)
        for tap in self.taps:
            if tap != width:
                self._feedback_mask |= 1 << (tap - 1)

    @property
    def period(self) -> int:
        return max_length_period(self.width)

    @property
    def output_bit(self) -> int:
        """The output bit is the last stage of the register."""
        return self.state & 1

    def step(self, clock_enabled: bool = True) -> Tuple[int, ActivityRecord]:
        if not clock_enabled:
            return self.output_bit, ActivityRecord()
        lsb = self.state & 1
        next_state = self.state >> 1
        if lsb:
            next_state ^= self._feedback_mask
        data_toggles = hamming_distance(self.state, next_state, self.width)
        self.state = next_state
        activity = ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * self.width,
            data_toggles=data_toggles,
            comb_toggles=len(self.taps) if lsb else 0,
        )
        return self.output_bit, activity

    def reset(self) -> None:
        self.state = self.seed

    def _save_state(self) -> int:
        return self.state

    def _restore_state(self, state: int) -> None:
        self.state = state

    def _closed_form_sequence(self, length: int) -> np.ndarray:
        key = ("lfsr", self.width, self.seed, tuple(sorted(set(self.taps))))
        return _cached_sequence_bits(
            key,
            length,
            lambda n: galois_sequence_bits(self.width, self.seed, self.taps, n),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LFSR(width={self.width}, taps={self.taps}, state={self.state:#x})"


class CircularShiftRegister(SequenceGenerator):
    """A circular shift register emitting a fixed, user-chosen pattern.

    The test-chip WGC can be configured in this mode; the watermark
    sequence is simply the register's initial pattern repeated forever.
    """

    def __init__(self, pattern: int, width: int = 32, name: str = "csr") -> None:
        super().__init__(name=name, width=width)
        self.pattern = pattern & ((1 << width) - 1)
        self.state = self.pattern

    @property
    def period(self) -> int:
        return self.width

    @property
    def output_bit(self) -> int:
        return self.state & 1

    def step(self, clock_enabled: bool = True) -> Tuple[int, ActivityRecord]:
        if not clock_enabled:
            return self.output_bit, ActivityRecord()
        lsb = self.state & 1
        next_state = (self.state >> 1) | (lsb << (self.width - 1))
        data_toggles = hamming_distance(self.state, next_state, self.width)
        self.state = next_state
        activity = ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * self.width,
            data_toggles=data_toggles,
        )
        return self.output_bit, activity

    def reset(self) -> None:
        self.state = self.pattern

    def _save_state(self) -> int:
        return self.state

    def _restore_state(self, state: int) -> None:
        self.state = state

    def _closed_form_sequence(self, length: int) -> np.ndarray:
        key = ("csr", self.width, self.pattern)
        return _cached_sequence_bits(
            key,
            length,
            lambda n: circular_shift_sequence_bits(self.pattern, self.width, n),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircularShiftRegister(width={self.width}, state={self.state:#x})"
