"""The two watermark architectures compared in the paper.

Both architectures pair a :class:`WatermarkGenerationCircuit` with a power
pattern producer:

* :class:`BaselineWatermark` (Fig. 1(a)): WGC + dedicated load circuit.
* :class:`ClockModulationWatermark` (Fig. 1(b)): WGC + clock-modulated
  existing (or redundant) clock-gated logic.

Both expose the same interface so that the measurement chain, the CPA
detector and the area analysis treat them interchangeably:

``step()``
    advance one cycle, returning the WMARK bit and per-group activity;
``activity_traces(num_cycles)``
    exact per-cycle activity for a long run, computed from one watermark
    period and tiled (the circuits are strictly periodic);
``power_trace(estimator, num_cycles)``
    the watermark's per-cycle power contribution;
``cell_inventory()`` / ``added_register_count``
    structural figures for the area and leakage analysis.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.core.clock_modulation import ClockModulatedBank, ClockModulatedIPBlock
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.load_circuit import LoadCircuit
from repro.core.wgc import WatermarkGenerationCircuit
from repro.power.estimator import PowerEstimator
from repro.power.synthesis import PeriodicPowerTemplate
from repro.power.trace import PowerTrace
from repro.rtl.activity import ActivityRecord, ActivityTrace


def _copy_activity_trace(trace: ActivityTrace) -> ActivityTrace:
    """An independent copy of a trace (array slices are views, not copies)."""
    return ActivityTrace(
        name=trace.name,
        clock_toggles=trace.clock_toggles.copy(),
        data_toggles=trace.data_toggles.copy(),
        comb_toggles=trace.comb_toggles.copy(),
    )


class WatermarkArchitecture(abc.ABC):
    """Common behaviour of both watermark architectures."""

    def __init__(self, wgc: WatermarkGenerationCircuit, name: str) -> None:
        self.wgc = wgc
        self.name = name
        self._periodic_activity_cache: Optional[Dict[str, ActivityTrace]] = None

    # -- abstract structural/behavioural hooks -----------------------------

    @property
    @abc.abstractmethod
    def kind(self) -> ArchitectureKind:
        """Which architecture this is."""

    @abc.abstractmethod
    def _load_step(self, wmark: int) -> ActivityRecord:
        """Advance the power-pattern producer one cycle."""

    @abc.abstractmethod
    def _load_reset(self) -> None:
        """Reset the power-pattern producer."""

    @property
    @abc.abstractmethod
    def added_register_count(self) -> int:
        """Registers the watermark adds to the host design."""

    @abc.abstractmethod
    def cell_inventory(self) -> Dict[str, int]:
        """Cell counts per library class of all watermark-involved hardware.

        Used for leakage estimation: every cell whose activity the watermark
        controls contributes, including reused host cells.
        """

    def added_cell_inventory(self) -> Dict[str, int]:
        """Cell counts of the hardware the watermark *adds* to the design.

        Differs from :meth:`cell_inventory` for the clock-modulation
        architecture in its intended end application, where an existing IP
        sub-module is reused and only the WGC is new.
        """
        return self.cell_inventory()

    # -- shared behaviour -----------------------------------------------------

    @property
    def sequence_period(self) -> int:
        """Period of the watermark sequence."""
        return self.wgc.period

    def sequence(self, length: Optional[int] = None) -> np.ndarray:
        """The watermark model sequence (the CPA vector ``X``)."""
        return self.wgc.sequence(length)

    def reset(self) -> None:
        """Reset the WGC and the power-pattern producer."""
        self.wgc.reset()
        self._load_reset()

    def step(self) -> Dict[str, ActivityRecord]:
        """Advance one clock cycle.

        Returns the activity of the two watermark sub-circuits under the
        keys ``"wgc"`` and ``"load"``.  The load sees the WMARK value of the
        *previous* cycle boundary (registered output), matching the paper's
        Fig. 2 waveforms where the load responds to the registered WMARK.
        """
        wmark_before = self.wgc.wmark
        _, wgc_activity = self.wgc.step()
        load_activity = self._load_step(wmark_before)
        return {"wgc": wgc_activity, "load": load_activity}

    def periodic_activity(self, use_cache: bool = True) -> Dict[str, ActivityTrace]:
        """Exact per-cycle activity over one full watermark period.

        The watermark circuits are strictly periodic with the sequence
        period, so one period fully characterises them.  The cycle-accurate
        step loop therefore runs at most once per architecture instance
        (the circuit configuration is fixed at construction): the result is
        cached and later calls -- including every trace synthesis through
        :meth:`power_template` -- are pure array work.  Callers receive
        independent trace copies, so mutating a returned trace cannot
        corrupt the cache.  Pass ``use_cache=False`` to force a fresh
        cycle-accurate run.
        """
        if use_cache and self._periodic_activity_cache is not None:
            return {
                key: _copy_activity_trace(trace)
                for key, trace in self._periodic_activity_cache.items()
            }
        self.reset()
        period = self.sequence_period
        wgc_records = []
        load_records = []
        for _ in range(period):
            activity = self.step()
            wgc_records.append(activity["wgc"])
            load_records.append(activity["load"])
        self.reset()
        traces = {
            "wgc": ActivityTrace.from_records(f"{self.name}/wgc", wgc_records),
            "load": ActivityTrace.from_records(f"{self.name}/load", load_records),
        }
        if use_cache:
            self._periodic_activity_cache = {
                key: _copy_activity_trace(trace) for key, trace in traces.items()
            }
        return traces

    def activity_traces(self, num_cycles: int) -> Dict[str, ActivityTrace]:
        """Exact activity traces over ``num_cycles`` cycles (tiled periods)."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        periodic = self.periodic_activity()
        return {key: trace.tile(num_cycles) for key, trace in periodic.items()}

    def combined_activity(self, num_cycles: int) -> ActivityTrace:
        """Total watermark activity (WGC plus load) over ``num_cycles``."""
        traces = self.activity_traces(num_cycles)
        combined = traces["wgc"].add(traces["load"])
        combined.name = self.name
        return combined

    def power_template(
        self, estimator: PowerEstimator, include_leakage: bool = True
    ) -> PeriodicPowerTemplate:
        """One-period per-cycle power template of the watermark circuit.

        Computed from the cached periodic activity, so after the first call
        per architecture no cycle-accurate stepping happens at all.
        """
        traces = self.periodic_activity()
        static = estimator.leakage_of(self.cell_inventory()) if include_leakage else 0.0
        trace = estimator.combined_power_trace(
            traces,
            cell_types={key: "dff" for key in traces},
            static_w=static,
            name=self.name,
        )
        return PeriodicPowerTemplate.from_power_trace(trace)

    def power_trace(
        self,
        estimator: PowerEstimator,
        num_cycles: int,
        include_leakage: bool = True,
        phase_offset: int = 0,
    ) -> PowerTrace:
        """Per-cycle power contributed by the watermark circuit.

        Synthesized from the one-period power template by modular-index
        extension -- bit-identical to estimating power over cycle-accurate
        activity of the full acquisition length (the equivalence suite in
        ``tests/test_power_synthesis.py`` pins this).  ``phase_offset``
        rotates the trace like ``np.roll(power_w, -phase_offset)``, which
        models the scope trigger being unaligned with the watermark phase.
        """
        template = self.power_template(estimator, include_leakage)
        return template.extend(num_cycles, phase_offset)

    def average_active_load_power(self, estimator: PowerEstimator) -> float:
        """Average load dynamic power during WMARK-high cycles.

        This is the quantity Table I reports ("power consumption of the
        placed-and-routed load circuit"): the load's dynamic power while the
        watermark enables it.
        """
        periodic = self.periodic_activity()
        wmark = self.sequence(self.sequence_period).astype(bool)
        load_power = estimator.dynamic_model.power_per_cycle("dff", periodic["load"])
        active = load_power[wmark[: len(load_power)]]
        if len(active) == 0:
            return 0.0
        return float(np.mean(active))

    def total_register_count(self) -> int:
        """All registers of the watermark hardware (WGC plus added load)."""
        return self.wgc.register_count + self.added_register_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, period={self.sequence_period})"


class BaselineWatermark(WatermarkArchitecture):
    """State-of-the-art watermark: WGC plus dedicated load circuit."""

    def __init__(
        self,
        wgc: Optional[WatermarkGenerationCircuit] = None,
        load: Optional[LoadCircuit] = None,
        name: str = "baseline_watermark",
    ) -> None:
        super().__init__(wgc or WatermarkGenerationCircuit.minimal(), name)
        self.load = load or LoadCircuit()

    @classmethod
    def from_config(cls, config: WatermarkConfig, name: str = "baseline_watermark") -> "BaselineWatermark":
        """Build the baseline architecture from a :class:`WatermarkConfig`."""
        wgc = (
            WatermarkGenerationCircuit.test_chip(active_width=config.lfsr_width, seed=config.lfsr_seed)
            if config.use_test_chip_wgc
            else WatermarkGenerationCircuit.minimal(width=config.lfsr_width, seed=config.lfsr_seed)
        )
        return cls(wgc=wgc, load=LoadCircuit(num_registers=config.load_registers), name=name)

    @property
    def kind(self) -> ArchitectureKind:
        return ArchitectureKind.BASELINE_LOAD_CIRCUIT

    def _load_step(self, wmark: int) -> ActivityRecord:
        return self.load.step(wmark)

    def _load_reset(self) -> None:
        self.load.reset()

    @property
    def added_register_count(self) -> int:
        return self.load.register_count

    def cell_inventory(self) -> Dict[str, int]:
        inventory = dict(self.wgc.cell_inventory())
        for cell_type, count in self.load.cell_inventory().items():
            inventory[cell_type] = inventory.get(cell_type, 0) + count
        return inventory


class ClockModulationWatermark(WatermarkArchitecture):
    """Proposed watermark: WGC modulating clock-gated logic."""

    def __init__(
        self,
        wgc: Optional[WatermarkGenerationCircuit] = None,
        modulated_block=None,
        name: str = "clock_modulation_watermark",
    ) -> None:
        super().__init__(wgc or WatermarkGenerationCircuit.test_chip(), name)
        self.modulated_block = modulated_block or ClockModulatedBank()

    @classmethod
    def from_config(cls, config: WatermarkConfig, name: str = "clock_modulation_watermark") -> "ClockModulationWatermark":
        """Build the proposed architecture from a :class:`WatermarkConfig`."""
        wgc = (
            WatermarkGenerationCircuit.test_chip(active_width=config.lfsr_width, seed=config.lfsr_seed)
            if config.use_test_chip_wgc
            else WatermarkGenerationCircuit.minimal(width=config.lfsr_width, seed=config.lfsr_seed)
        )
        bank = ClockModulatedBank(
            num_words=config.num_words,
            word_width=config.word_width,
            switching_registers=config.switching_registers,
        )
        return cls(wgc=wgc, modulated_block=bank, name=name)

    @classmethod
    def reusing_ip_block(
        cls,
        modulated_registers: int,
        data_activity_factor: float = 0.0,
        config: Optional[WatermarkConfig] = None,
        name: str = "clock_modulation_watermark",
    ) -> "ClockModulationWatermark":
        """The end-application variant that reuses an existing IP sub-module."""
        config = config or WatermarkConfig()
        wgc = WatermarkGenerationCircuit.minimal(width=config.lfsr_width, seed=config.lfsr_seed)
        block = ClockModulatedIPBlock(
            modulated_registers=modulated_registers,
            data_activity_factor=data_activity_factor,
        )
        return cls(wgc=wgc, modulated_block=block, name=name)

    @property
    def kind(self) -> ArchitectureKind:
        return ArchitectureKind.CLOCK_MODULATION

    def _load_step(self, wmark: int) -> ActivityRecord:
        return self.modulated_block.step(wmark)

    def _load_reset(self) -> None:
        self.modulated_block.reset()

    @property
    def added_register_count(self) -> int:
        return self.modulated_block.register_count

    def cell_inventory(self) -> Dict[str, int]:
        inventory = dict(self.wgc.cell_inventory())
        for cell_type, count in self.modulated_block.cell_inventory().items():
            inventory[cell_type] = inventory.get(cell_type, 0) + count
        return inventory

    def added_cell_inventory(self) -> Dict[str, int]:
        if self.modulated_block.register_count == 0:
            # The modulated sub-module already exists in the host design;
            # only the WGC is new hardware.
            return dict(self.wgc.cell_inventory())
        return self.cell_inventory()
