"""Clock-modulation watermark load (the paper's proposed technique).

Instead of adding a dedicated load circuit, the proposed architecture
(Fig. 1(b)) reuses clock-gated sequential logic that already exists in the
design: the ``WMARK`` bit is ANDed into the enable of the block's integrated
clock gates, so while ``WMARK`` is 1 the block's clock tree (and every
register clock buffer below it) toggles, and while ``WMARK`` is 0 the clock
is stopped at the gates and the block consumes no dynamic power.

Two flavours are provided:

* :class:`ClockModulatedBank` -- the *redundant* 1,024-register bank used on
  the paper's test chips (32 words x 32 bits, one ICG per word, registers
  pre-initialised to zero so by default no data switching occurs).  This is
  the configuration measured in Section IV and costed in Table I.
* :class:`ClockModulatedIPBlock` -- the intended end application: an existing
  commercial IP sub-module whose clock gates are modulated, so the watermark
  adds *no* load registers at all.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.rtl.activity import ActivityRecord, ZERO_ACTIVITY
from repro.rtl.clock_tree import ClockTree
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE, CombinationalBlock, RegisterBank


class ClockModulatedBank:
    """The redundant clock-gated register bank of the test chips (Fig. 4(a)).

    Parameters
    ----------
    num_words, word_width:
        Bank organisation; the silicon uses 32 words of 32 bits (1,024
        registers).
    switching_registers:
        How many registers flip their data when clocked.  The silicon
        pre-initialises all registers to 0 so no data switching occurs
        (``0``); Table I additionally evaluates 256, 512 and 1,024.
    clock_tree_fanout:
        Maximum fanout used when building the bank's local clock tree.
    """

    def __init__(
        self,
        num_words: int = 32,
        word_width: int = 32,
        switching_registers: int = 0,
        clock_tree_fanout: int = 16,
        name: str = "cm_bank",
    ) -> None:
        self.name = name
        self.bank = RegisterBank(
            f"{name}/bank",
            num_words=num_words,
            word_width=word_width,
            switching_registers=switching_registers,
        )
        self.enable_logic = CombinationalBlock(f"{name}/enable", gate_count=num_words, activity_factor=0.05)
        # Local clock tree feeding the ICGs; it sits above the gates, so it
        # keeps toggling even when the watermark disables the words.  Its
        # contribution is small (num_words sinks).
        self.icg_clock_tree = ClockTree(f"{name}/icg_tree", num_sinks=num_words, max_fanout=clock_tree_fanout)

    # -- structural properties ---------------------------------------------

    @property
    def register_count(self) -> int:
        """Registers added by this (redundant) load implementation."""
        return self.bank.total_registers

    @property
    def switching_registers(self) -> int:
        """Registers that flip data when the watermark enables the clock."""
        return self.bank.switching_registers

    @property
    def num_words(self) -> int:
        """Number of clock-gated words (equals the number of ICGs)."""
        return self.bank.num_words

    def cell_inventory(self) -> Dict[str, int]:
        """Cell counts per library class, for leakage/area estimation."""
        return {
            "dff": self.bank.total_registers,
            "icg": self.bank.num_words,
            "clk_buf": self.icg_clock_tree.buffer_count,
            "comb": self.enable_logic.gate_count,
        }

    # -- behaviour ------------------------------------------------------------

    def reset(self) -> None:
        """Reset the bank contents and clock gates."""
        self.bank.reset()

    def step(self, wmark: int, clk_ctrl: int = 1) -> ActivityRecord:
        """Advance one cycle.

        ``clk_ctrl`` is the original clock-gate control of the host design
        (Fig. 1(b)); the effective enable is ``WMARK AND CLK_CTRL``.  For the
        stand-alone redundant bank ``clk_ctrl`` is tied high.
        """
        enable = bool(wmark) and bool(clk_ctrl)
        activity = self.bank.step(enable)
        # The ICG-level clock tree above the gates follows the root clock and
        # keeps running; the enable glue logic switches when WMARK changes.
        activity = activity + self.icg_clock_tree.step(gated=False)
        activity = activity + self.enable_logic.step(active=enable)
        return activity

    def expected_active_activity(self) -> ActivityRecord:
        """Activity of one enabled cycle, for analytical power estimates."""
        return ActivityRecord(
            clock_toggles=(
                CLOCK_EDGES_PER_CYCLE * self.bank.total_registers
                + CLOCK_EDGES_PER_CYCLE * self.bank.num_words
                + self.icg_clock_tree.toggles_per_cycle()
            ),
            data_toggles=self.bank.switching_registers,
            comb_toggles=int(round(self.enable_logic.gate_count * self.enable_logic.activity_factor)),
        )


class ClockModulatedIPBlock:
    """An existing IP sub-module whose clock gates are watermark-modulated.

    This is the intended end application (Section IV, last paragraph): no
    redundant registers are added at all; the watermark reuses the
    sub-module's own ``modulated_registers`` flip-flops and their clock
    tree.  The block's functional behaviour is outside the scope of the
    power model -- what matters is that its clock tree toggles when
    ``WMARK AND CLK_CTRL`` is 1.

    Parameters
    ----------
    modulated_registers:
        Number of flip-flops below the modulated clock gate(s).
    data_activity_factor:
        Average fraction of those registers that change data per enabled
        cycle (0 for an idle sub-module, which is the paper's measurement
        scenario: the watermark is exercised while the sub-module is
        otherwise inactive).
    """

    def __init__(
        self,
        modulated_registers: int,
        data_activity_factor: float = 0.0,
        num_clock_gates: Optional[int] = None,
        clock_tree_fanout: int = 16,
        name: str = "cm_ip",
    ) -> None:
        if modulated_registers <= 0:
            raise ValueError("the modulated sub-module must contain registers")
        if not 0.0 <= data_activity_factor <= 1.0:
            raise ValueError("data activity factor must be within [0, 1]")
        self.name = name
        self.modulated_registers = modulated_registers
        self.data_activity_factor = data_activity_factor
        self.num_clock_gates = num_clock_gates or max(1, modulated_registers // 32)
        self.clock_tree = ClockTree(f"{name}/clk_tree", num_sinks=modulated_registers, max_fanout=clock_tree_fanout)

    @property
    def register_count(self) -> int:
        """Registers *added* by the watermark: none, the block already exists."""
        return 0

    def cell_inventory(self) -> Dict[str, int]:
        """Cells whose activity the watermark modulates (owned by the host IP)."""
        return {
            "dff": self.modulated_registers,
            "icg": self.num_clock_gates,
            "clk_buf": self.clock_tree.buffer_count,
        }

    def reset(self) -> None:
        """The block holds no watermark-owned state."""
        return None

    def step(self, wmark: int, clk_ctrl: int = 1) -> ActivityRecord:
        """Activity of the modulated sub-module for one cycle."""
        enable = bool(wmark) and bool(clk_ctrl)
        if not enable:
            return ZERO_ACTIVITY
        register_clocks = CLOCK_EDGES_PER_CYCLE * self.modulated_registers
        gate_clocks = CLOCK_EDGES_PER_CYCLE * self.num_clock_gates
        tree_clocks = self.clock_tree.toggles_per_cycle()
        data = int(round(self.modulated_registers * self.data_activity_factor))
        return ActivityRecord(
            clock_toggles=register_clocks + gate_clocks + tree_clocks,
            data_toggles=data,
        )

    def expected_active_activity(self) -> ActivityRecord:
        """Activity of one enabled cycle, for analytical power estimates."""
        return self.step(wmark=1, clk_ctrl=1)
