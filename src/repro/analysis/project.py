"""Project-wide symbol table, call graph and per-module summaries.

The first-generation repro-lint rules (:mod:`repro.analysis.rules`) are
strictly per-module AST visitors: each rule sees one file at a time.
That is blind to exactly the bug class the concurrent subsystems invite
-- an attribute guarded by a lock in one method but mutated bare in
another, a fork in code reachable from a module that already started
threads, two sweep-cell code paths seeding ``default_rng`` identically.

This module is the cross-module layer those rules need:

``ModuleSummary``
    One JSON-serializable digest per module, extracted in a single AST
    pass: functions and the raw dotted names they call, thread-start and
    fork call sites, ``default_rng`` call sites with their seed
    expression text, per-class lock attributes and attribute accesses
    (with the locks held at each access), and dict get-or-create cache
    idioms.  Because the digest is plain JSON it is what the incremental
    lint cache (:mod:`repro.analysis.cache`) persists -- a warm run
    never re-parses an unchanged file.

``LintProject``
    The shared symbol table + call graph over every summary, with
    import-aware call resolution and forward reachability.  Project
    rules (:mod:`repro.analysis.rules_concurrency`) query it instead of
    re-walking ASTs.

Resolution is module-level and deliberately lightweight: bare names via
the defining module and its imports, ``self.method`` via the enclosing
class, ``alias.func`` / ``alias.Class.method`` via the import table, and
otherwise a by-name fallback over project methods (bounded, and skipped
for generic container-protocol names) -- a sound over-approximation for
hazard reachability, not a type inferencer.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import LintModule, Rule

__all__ = [
    "AttrAccess",
    "CacheOp",
    "ClassSummary",
    "FunctionSummary",
    "LintProject",
    "ModuleSummary",
    "ProjectRule",
    "summarize_module",
]

#: Pseudo-function holding module-level (import-time) statements.
MODULE_BODY = "<module>"

#: Resolved dotted call names that start a thread.
_THREAD_STARTERS = {
    "threading.Thread",
    "threading.Timer",
    "_thread.start_new_thread",
    "concurrent.futures.ThreadPoolExecutor",
}

#: Base classes that make every instance spawn handler threads.
_THREADING_BASES = {
    "http.server.ThreadingHTTPServer",
    "socketserver.ThreadingMixIn",
    "socketserver.ThreadingTCPServer",
    "socketserver.ThreadingUDPServer",
}

#: Lock constructors recognised for guard tracking.
_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = {
    "append",
    "add",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}

#: Attribute-call names too generic for the by-name fallback (they are
#: overwhelmingly container/stdlib protocol calls, not project methods).
_FALLBACK_BLOCKLIST = {
    "append",
    "add",
    "clear",
    "copy",
    "decode",
    "encode",
    "extend",
    "format",
    "get",
    "items",
    "join",
    "keys",
    "lower",
    "pop",
    "read",
    "remove",
    "setdefault",
    "sort",
    "split",
    "startswith",
    "endswith",
    "strip",
    "update",
    "upper",
    "values",
    "write",
}

#: By-name fallback gives up when a method name has more project
#: definitions than this (the edge set would be noise, not signal).
_FALLBACK_LIMIT = 12


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# -- summary dataclasses ---------------------------------------------------------


@dataclasses.dataclass
class AttrAccess:
    """One access to a shared attribute (``self.X``) or module global."""

    attr: str
    line: int
    #: ``"read"`` | ``"write"`` | ``"rmw"`` (read-modify-write: augmented
    #: assignment, subscript store, in-place mutator call, deletion).
    mode: str
    #: Lock attribute/global names held (innermost-last) at the access.
    locks: List[str]
    function: str
    in_init: bool


@dataclasses.dataclass
class CacheOp:
    """One half of a dict get-or-create idiom on a shared mapping."""

    target: str  # attribute name (``self.X`` -> ``X``) or global name
    scope: str  # owning class name, or ``""`` for module globals
    #: ``"store"`` = subscript store inside a missing-key branch;
    #: ``"guard"`` = the missing-key test itself.
    op: str
    line: int
    function: str
    locks: List[str]


@dataclasses.dataclass
class FunctionSummary:
    """One top-level function or method (nested defs fold into it)."""

    qualname: str
    lineno: int
    calls: List[str]
    starts_thread: bool
    #: ``(line, dotted)`` fork/process-spawn call sites.
    fork_calls: List[Tuple[int, str]]
    #: ``(line, seed_expression_source)`` ``default_rng`` call sites.
    rng_calls: List[Tuple[int, str]]


@dataclasses.dataclass
class ClassSummary:
    """Locks, attribute accesses and bases of one class."""

    name: str
    lineno: int
    bases: List[str]
    #: Lock/RLock attributes assigned in any method -> first line seen.
    lock_attrs: Dict[str, int]
    accesses: List[AttrAccess]


@dataclasses.dataclass
class ModuleSummary:
    """Everything the project rules need to know about one module."""

    logical_path: str
    module_key: str
    module_name: str
    #: Local name -> dotted origin (``{"backends": "repro.pipeline.backends"}``).
    imports: Dict[str, str]
    functions: Dict[str, FunctionSummary]
    classes: Dict[str, ClassSummary]
    #: Module-level names bound to ``threading.Lock()`` / ``RLock()``.
    global_locks: List[str]
    #: Module-level accesses to module globals (function scope ``""``).
    global_accesses: List[AttrAccess]
    cache_ops: List[CacheOp]
    starts_threads: bool

    def to_json_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        def access(raw: Dict[str, object]) -> AttrAccess:
            return AttrAccess(**raw)  # type: ignore[arg-type]

        functions = {
            name: FunctionSummary(
                qualname=str(raw["qualname"]),
                lineno=int(raw["lineno"]),  # type: ignore[arg-type]
                calls=list(raw["calls"]),  # type: ignore[arg-type]
                starts_thread=bool(raw["starts_thread"]),
                fork_calls=[tuple(item) for item in raw["fork_calls"]],  # type: ignore[arg-type,misc]
                rng_calls=[tuple(item) for item in raw["rng_calls"]],  # type: ignore[arg-type,misc]
            )
            for name, raw in dict(data["functions"]).items()  # type: ignore[arg-type,call-overload]
        }
        classes = {
            name: ClassSummary(
                name=str(raw["name"]),
                lineno=int(raw["lineno"]),  # type: ignore[arg-type]
                bases=list(raw["bases"]),  # type: ignore[arg-type]
                lock_attrs=dict(raw["lock_attrs"]),  # type: ignore[arg-type]
                accesses=[access(item) for item in raw["accesses"]],  # type: ignore[union-attr]
            )
            for name, raw in dict(data["classes"]).items()  # type: ignore[arg-type,call-overload]
        }
        return cls(
            logical_path=str(data["logical_path"]),
            module_key=str(data["module_key"]),
            module_name=str(data["module_name"]),
            imports=dict(data["imports"]),  # type: ignore[arg-type]
            functions=functions,
            classes=classes,
            global_locks=list(data["global_locks"]),  # type: ignore[arg-type]
            global_accesses=[access(item) for item in data["global_accesses"]],  # type: ignore[union-attr]
            cache_ops=[CacheOp(**item) for item in data["cache_ops"]],  # type: ignore[arg-type,union-attr]
            starts_threads=bool(data["starts_threads"]),
        )


def _module_name_for(module_key: str) -> str:
    """Dotted import name of a module key (``pipeline/backends.py``)."""
    if not module_key:
        return ""
    key = module_key[:-3] if module_key.endswith(".py") else module_key
    parts = [part for part in key.split("/") if part]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + parts)


# -- extraction ------------------------------------------------------------------


class _SummaryExtractor:
    """Single-pass extraction of a :class:`ModuleSummary` from one AST."""

    def __init__(self, module: LintModule) -> None:
        self.module = module
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.global_locks: List[str] = []
        self.global_accesses: List[AttrAccess] = []
        self.cache_ops: List[CacheOp] = []
        self.module_globals: Set[str] = set()
        self.starts_threads = False

    # - imports and name resolution local to this module -

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def _resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite the head of ``dotted`` through the import table."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    # - classification helpers -

    def _is_thread_start(self, resolved: Optional[str]) -> bool:
        return resolved in _THREAD_STARTERS

    def _is_lock_factory(self, resolved: Optional[str]) -> bool:
        return resolved in _LOCK_FACTORIES

    def _fork_api(self, resolved: Optional[str], raw: Optional[str]) -> Optional[str]:
        if resolved == "os.fork":
            return "os.fork"
        last = (raw or "").rsplit(".", 1)[-1]
        if last == "Process" and any(
            origin.split(".")[0] == "multiprocessing"
            for origin in self.imports.values()
        ):
            return raw
        return None

    def _rng_seed_src(self, node: ast.Call, resolved: Optional[str]) -> Optional[str]:
        if not resolved or resolved.rsplit(".", 1)[-1] != "default_rng":
            return None
        if not (resolved == "numpy.random.default_rng" or ".random." in resolved
                or resolved == "default_rng"):
            return None
        seed: Optional[ast.expr] = node.args[0] if node.args else None
        if seed is None:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed = keyword.value
        return "" if seed is None else ast.unparse(seed)

    # - module body -

    def run(self) -> ModuleSummary:
        tree = self.module.tree
        self._collect_imports(tree)
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_globals.add(target.id)
                        if isinstance(node.value, ast.Call) and self._is_lock_factory(
                            self._resolve(_dotted(node.value.func))
                        ):
                            self.global_locks.append(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.module_globals.add(node.target.id)

        module_body = FunctionSummary(
            qualname=MODULE_BODY, lineno=1, calls=[], starts_thread=False,
            fork_calls=[], rng_calls=[],
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._extract_function(node, qualname=node.name, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._extract_class(node)
            else:
                self._extract_statements([node], module_body, class_name=None,
                                         self_name=None, locks=[])
        self.functions[MODULE_BODY] = module_body

        starts = self.starts_threads or any(
            f.starts_thread for f in self.functions.values()
        )
        return ModuleSummary(
            logical_path=self.module.logical_path,
            module_key=self.module.module_key,
            module_name=_module_name_for(self.module.module_key),
            imports=self.imports,
            functions=self.functions,
            classes=self.classes,
            global_locks=self.global_locks,
            global_accesses=self.global_accesses,
            cache_ops=self.cache_ops,
            starts_threads=starts,
        )

    # - classes -

    def _extract_class(self, node: ast.ClassDef) -> None:
        bases = [self._resolve(_dotted(base)) or "" for base in node.bases]
        summary = ClassSummary(
            name=node.name, lineno=node.lineno, bases=bases,
            lock_attrs={}, accesses=[],
        )
        self.classes[node.name] = summary
        if any(base in _THREADING_BASES for base in bases):
            self.starts_threads = True
        methods = [
            item for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: find the lock attributes so pass 2 can track held locks.
        for method in methods:
            self_name = self._self_name(method)
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                if not (isinstance(sub.value, ast.Call) and self._is_lock_factory(
                    self._resolve(_dotted(sub.value.func))
                )):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        summary.lock_attrs.setdefault(target.attr, sub.lineno)
        for method in methods:
            self._extract_function(
                method, qualname=f"{node.name}.{method.name}", class_name=node.name
            )

    @staticmethod
    def _self_name(method: ast.AST) -> Optional[str]:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        args = method.args
        if args.posonlyargs:
            return args.posonlyargs[0].arg
        if args.args:
            return args.args[0].arg
        return None

    # - functions / statement walk -

    def _extract_function(
        self,
        node: ast.AST,
        qualname: str,
        class_name: Optional[str],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        summary = FunctionSummary(
            qualname=qualname, lineno=node.lineno, calls=[],
            starts_thread=False, fork_calls=[], rng_calls=[],
        )
        self.functions[qualname] = summary
        self._extract_statements(
            node.body, summary, class_name=class_name,
            self_name=self._self_name(node), locks=[],
        )

    def _extract_statements(
        self,
        body: Sequence[ast.AST],
        summary: FunctionSummary,
        class_name: Optional[str],
        self_name: Optional[str],
        locks: List[str],
    ) -> None:
        #: ``var -> target`` for ``var = <target>.get(key)`` guard tracking.
        guard_vars: Dict[str, str] = {}
        for statement in body:
            self._walk(statement, summary, class_name, self_name, locks, guard_vars)

    def _held_lock_name(
        self, expr: ast.expr, class_name: Optional[str], self_name: Optional[str]
    ) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name
            and class_name is not None
            and expr.attr in self.classes[class_name].lock_attrs
        ):
            return expr.attr
        if isinstance(expr, ast.Name) and expr.id in self.global_locks:
            return expr.id
        return None

    def _shared_target(
        self, expr: ast.AST, class_name: Optional[str], self_name: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        """``(attr_or_global, scope)`` when ``expr`` names shared state."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self_name
            and class_name is not None
        ):
            return expr.attr, class_name
        if isinstance(expr, ast.Name) and expr.id in self.module_globals:
            return expr.id, ""
        return None

    def _record_access(
        self,
        target: Tuple[str, str],
        line: int,
        mode: str,
        locks: List[str],
        function: str,
    ) -> None:
        attr, scope = target
        access = AttrAccess(
            attr=attr, line=line, mode=mode, locks=list(locks),
            function=function, in_init=function.endswith("__init__"),
        )
        if scope:
            self.classes[scope].accesses.append(access)
        else:
            self.global_accesses.append(access)

    def _record_cache_op(
        self,
        target: Tuple[str, str],
        op: str,
        line: int,
        locks: List[str],
        function: str,
    ) -> None:
        self.cache_ops.append(
            CacheOp(
                target=target[0], scope=target[1], op=op, line=line,
                function=function, locks=list(locks),
            )
        )

    def _missing_key_target(
        self,
        test: ast.expr,
        guard_vars: Dict[str, str],
        class_name: Optional[str],
        self_name: Optional[str],
    ) -> Optional[Tuple[str, str]]:
        """The shared mapping a ``missing-key`` If test checks, if any."""
        # ``key not in T`` / ``key in T``
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            op = test.ops[0]
            if isinstance(op, (ast.In, ast.NotIn)):
                return self._shared_target(
                    test.comparators[0], class_name, self_name
                )
            # ``T.get(k) is None`` / ``var is None`` where var = T.get(k)
            if isinstance(op, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq)):
                for side in (test.left, test.comparators[0]):
                    got = self._get_call_target(side, class_name, self_name)
                    if got is not None:
                        return got
                    if isinstance(side, ast.Name) and side.id in guard_vars:
                        name = guard_vars[side.id]
                        return self._shared_target_by_name(name, class_name)
        # ``if not var`` where var = T.get(k)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = test.operand
            if isinstance(inner, ast.Name) and inner.id in guard_vars:
                return self._shared_target_by_name(guard_vars[inner.id], class_name)
            got = self._get_call_target(inner, class_name, self_name)
            if got is not None:
                return got
        return None

    def _get_call_target(
        self, expr: ast.AST, class_name: Optional[str], self_name: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "get"
        ):
            return self._shared_target(expr.func.value, class_name, self_name)
        return None

    def _shared_target_by_name(
        self, spec: str, class_name: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        scope, _, attr = spec.partition("::")
        if scope == "" and class_name is None:
            return attr, ""
        if scope and scope == (class_name or ""):
            return attr, scope
        return attr, scope

    def _walk(
        self,
        node: ast.AST,
        summary: FunctionSummary,
        class_name: Optional[str],
        self_name: Optional[str],
        locks: List[str],
        guard_vars: Dict[str, str],
    ) -> None:
        record = lambda target, line, mode: self._record_access(  # noqa: E731
            target, line, mode, locks, summary.qualname
        )

        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = list(locks)
            for item in node.items:
                lock = self._held_lock_name(item.context_expr, class_name, self_name)
                if lock is not None:
                    held.append(lock)
                self._walk(item.context_expr, summary, class_name, self_name,
                           locks, guard_vars)
            for child in node.body:
                self._walk(child, summary, class_name, self_name, held, guard_vars)
            return

        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested defs fold into the enclosing summary: their bodies run
            # (at latest) when the closure is invoked by this function's
            # callees, so attributing their calls here keeps reachability
            # sound without modelling closures.
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._walk(child, summary, class_name, self_name, locks, guard_vars)
            return

        if isinstance(node, ast.Assign):
            # guard-var tracking: ``var = T.get(key)``
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                got = self._get_call_target(node.value, class_name, self_name)
                if got is not None:
                    guard_vars[node.targets[0].id] = f"{got[1]}::{got[0]}"
            for target in node.targets:
                self._classify_store(target, record, class_name, self_name,
                                     summary, locks, guard_vars, is_aug=False)
            self._walk(node.value, summary, class_name, self_name, locks, guard_vars)
            return

        if isinstance(node, ast.AugAssign):
            self._classify_store(node.target, record, class_name, self_name,
                                 summary, locks, guard_vars, is_aug=True)
            self._walk(node.value, summary, class_name, self_name, locks, guard_vars)
            return

        if isinstance(node, ast.Delete):
            for target in node.targets:
                base = target.value if isinstance(target, ast.Subscript) else target
                shared = self._shared_target(base, class_name, self_name)
                if shared is not None:
                    record(shared, node.lineno, "rmw")
            return

        if isinstance(node, ast.If):
            missing = self._missing_key_target(
                node.test, guard_vars, class_name, self_name
            )
            self._walk(node.test, summary, class_name, self_name, locks, guard_vars)
            if missing is not None:
                self._record_cache_op(
                    missing, "guard", node.lineno, locks, summary.qualname
                )
                for child in node.body:
                    self._mark_stores_in_branch(
                        child, missing, summary, class_name, self_name, locks
                    )
            for child in node.body + node.orelse:
                self._walk(child, summary, class_name, self_name, locks, guard_vars)
            return

        if isinstance(node, ast.Call):
            raw = _dotted(node.func)
            resolved = self._resolve(raw)
            if raw is not None:
                summary.calls.append(raw)
            elif isinstance(node.func, ast.Attribute):
                summary.calls.append(f"?.{node.func.attr}")
            if self._is_thread_start(resolved):
                summary.starts_thread = True
            fork = self._fork_api(resolved, raw)
            if fork is not None:
                summary.fork_calls.append((node.lineno, fork))
            seed_src = self._rng_seed_src(node, resolved)
            if seed_src is not None:
                summary.rng_calls.append((node.lineno, seed_src))
            # a callable handed to Thread(target=...)/Process(target=...)
            # or executor.submit(fn, ...) runs -- that is a call edge
            if self._is_thread_start(resolved) or fork is not None:
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        ref = _dotted(keyword.value)
                        if ref is not None:
                            summary.calls.append(ref)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                ref = _dotted(node.args[0])
                if ref is not None:
                    summary.calls.append(ref)
            # ``self.X.append(...)`` style in-place mutation
            if isinstance(node.func, ast.Attribute) and (
                node.func.attr in _MUTATING_METHODS
            ):
                shared = self._shared_target(node.func.value, class_name, self_name)
                if shared is not None:
                    record(shared, node.lineno, "rmw")
                    if node.func.attr == "setdefault":
                        # setdefault is the guard and the store in one call
                        self._record_cache_op(
                            shared, "guard", node.lineno, locks, summary.qualname
                        )
                        self._record_cache_op(
                            shared, "store", node.lineno, locks, summary.qualname
                        )
            for child in ast.iter_child_nodes(node):
                self._walk(child, summary, class_name, self_name, locks, guard_vars)
            return

        shared = self._shared_target(node, class_name, self_name)
        if shared is not None and isinstance(getattr(node, "ctx", None), ast.Load):
            record(shared, node.lineno, "read")  # type: ignore[attr-defined]

        for child in ast.iter_child_nodes(node):
            self._walk(child, summary, class_name, self_name, locks, guard_vars)

    def _classify_store(
        self,
        target: ast.AST,
        record,  # type: ignore[no-untyped-def]
        class_name: Optional[str],
        self_name: Optional[str],
        summary: FunctionSummary,
        locks: List[str],
        guard_vars: Dict[str, str],
        is_aug: bool,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(element, record, class_name, self_name,
                                     summary, locks, guard_vars, is_aug)
            return
        if isinstance(target, ast.Subscript):
            shared = self._shared_target(target.value, class_name, self_name)
            if shared is not None:
                record(shared, target.lineno, "rmw")
            self._walk(target.slice, summary, class_name, self_name, locks,
                       guard_vars)
            return
        shared = self._shared_target(target, class_name, self_name)
        if shared is not None:
            record(shared, target.lineno, "rmw" if is_aug else "write")
            return
        if isinstance(target, ast.Attribute):
            self._walk(target.value, summary, class_name, self_name, locks,
                       guard_vars)

    def _mark_stores_in_branch(
        self,
        node: ast.AST,
        missing: Tuple[str, str],
        summary: FunctionSummary,
        class_name: Optional[str],
        self_name: Optional[str],
        locks: List[str],
    ) -> None:
        """Record ``T[k] = v`` stores inside a missing-key branch."""
        for sub in ast.walk(node):
            targets: List[ast.AST] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    shared = self._shared_target(
                        target.value, class_name, self_name
                    )
                    if shared == missing:
                        self._record_cache_op(
                            missing, "store", sub.lineno, locks, summary.qualname
                        )


def summarize_module(module: LintModule) -> ModuleSummary:
    """Extract the project-rule digest of one parsed module."""
    return _SummaryExtractor(module).run()


# -- the project -----------------------------------------------------------------


class LintProject:
    """Symbol table + call graph over a set of :class:`ModuleSummary`."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            key = summary.module_key or summary.logical_path
            self.modules[key] = summary
        #: ``module_name`` -> module key, for import resolution.
        self._by_name: Dict[str, str] = {
            summary.module_name: key
            for key, summary in self.modules.items()
            if summary.module_name
        }
        #: function id (``key::qualname``) -> FunctionSummary
        self.functions: Dict[str, FunctionSummary] = {}
        #: method name -> ids of every project function/method with it.
        self._by_method_name: Dict[str, List[str]] = {}
        for key, summary in self.modules.items():
            for qualname, function in summary.functions.items():
                fid = f"{key}::{qualname}"
                self.functions[fid] = function
                short = qualname.rsplit(".", 1)[-1]
                self._by_method_name.setdefault(short, []).append(fid)
        self._edges: Dict[str, List[str]] = {}
        self._build_edges()

    # - resolution -

    def function_id(self, module_key: str, qualname: str) -> str:
        return f"{module_key}::{qualname}"

    def _module_for_name(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Longest project module whose name prefixes ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            name = ".".join(parts[:cut])
            if name in self._by_name:
                return self._by_name[name], ".".join(parts[cut:])
        return None

    def resolve_call(
        self, module_key: str, caller_qualname: str, raw: str
    ) -> List[str]:
        """Function ids a raw dotted call name may land on."""
        summary = self.modules.get(module_key)
        if summary is None:
            return []
        parts = raw.split(".")
        head = parts[0]

        # self.method -> method on the enclosing class
        if head in ("self", "cls") and len(parts) == 2 and "." in caller_qualname:
            class_name = caller_qualname.split(".")[0]
            candidate = f"{class_name}.{parts[1]}"
            if candidate in summary.functions:
                return [self.function_id(module_key, candidate)]
            return self._fallback(parts[1])

        # bare name -> same-module function/class, else through imports
        if len(parts) == 1:
            if head in summary.functions:
                return [self.function_id(module_key, head)]
            if head in summary.classes:
                return self._class_targets(module_key, head, "__init__")
            origin = summary.imports.get(head)
            if origin is not None:
                return self._resolve_dotted(origin)
            return []

        # Class.method in this module
        if head in summary.classes:
            candidate = f"{head}.{parts[1]}"
            if candidate in summary.functions:
                return [self.function_id(module_key, candidate)]
            return []

        # imported alias: alias.func / alias.Class.method / package.module.func
        origin = summary.imports.get(head)
        if origin is not None:
            return self._resolve_dotted(".".join([origin] + parts[1:]))

        # unresolvable receiver: by-name fallback on the last segment
        return self._fallback(parts[-1])

    def _class_targets(
        self, module_key: str, class_name: str, method: str
    ) -> List[str]:
        summary = self.modules[module_key]
        candidate = f"{class_name}.{method}"
        if candidate in summary.functions:
            return [self.function_id(module_key, candidate)]
        return []

    def _resolve_dotted(self, dotted: str) -> List[str]:
        located = self._module_for_name(dotted)
        if located is None:
            return []
        key, remainder = located
        summary = self.modules[key]
        if not remainder:
            return [self.function_id(key, MODULE_BODY)]
        parts = remainder.split(".")
        if parts[0] in summary.functions:
            return [self.function_id(key, parts[0])]
        if parts[0] in summary.classes:
            method = parts[1] if len(parts) > 1 else "__init__"
            return self._class_targets(key, parts[0], method)
        return []

    def _fallback(self, name: str) -> List[str]:
        if name.startswith("__") or name in _FALLBACK_BLOCKLIST:
            return []
        candidates = self._by_method_name.get(name, [])
        if not candidates or len(candidates) > _FALLBACK_LIMIT:
            return []
        return list(candidates)

    # - call graph -

    def _build_edges(self) -> None:
        for key, summary in self.modules.items():
            for qualname, function in summary.functions.items():
                fid = self.function_id(key, qualname)
                edges: Set[str] = set()
                for raw in function.calls:
                    if raw.startswith("?."):
                        edges.update(self._fallback(raw[2:]))
                    else:
                        edges.update(self.resolve_call(key, qualname, raw))
                # instantiating a class reaches every method eventually is
                # too coarse; but a module body reaches its own functions'
                # decorators etc. -- leave as resolved.
                self._edges[fid] = sorted(edges)

    def callees(self, function_id: str) -> List[str]:
        return self._edges.get(function_id, [])

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Forward closure over the call graph (module bodies included).

        When any function of a module is reached, the module's import-time
        body is considered reached as well (importing the module ran it).
        """
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            module_key = current.split("::", 1)[0]
            body = self.function_id(module_key, MODULE_BODY)
            if body in self.functions and body not in seen:
                stack.append(body)
            stack.extend(
                callee for callee in self.callees(current) if callee not in seen
            )
        return seen

    def functions_of_module(self, module_key: str) -> List[str]:
        summary = self.modules.get(module_key)
        if summary is None:
            return []
        return [self.function_id(module_key, name) for name in summary.functions]

    def thread_rooted(self) -> Set[str]:
        """Everything reachable from any thread-starting module."""
        roots: List[str] = []
        for key, summary in self.modules.items():
            if summary.starts_threads:
                roots.extend(self.functions_of_module(key))
        return self.reachable_from(roots)


# -- project rules ---------------------------------------------------------------


class ProjectRule(Rule):
    """A rule that needs the whole :class:`LintProject`, not one module.

    Subclasses implement :meth:`check_project`, returning
    ``(logical_path, line, message)`` triples; the engine attaches
    suppression state from the owning module's pragmas.  The per-module
    :meth:`Rule.check` is intentionally inert so a ``ProjectRule`` can sit
    in the same registry as the per-module rules.
    """

    def applies_to(self, module: LintModule) -> bool:  # pragma: no cover
        return False

    def check(self, module: LintModule) -> List[Tuple[int, str]]:
        return []

    def check_project(
        self, project: LintProject
    ) -> List[Tuple[str, int, str]]:
        raise NotImplementedError
