"""Robustness comparison of the two watermark architectures (Section VI)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.attacks import AttackOutcome, RemovalAttack
from repro.core.embedding import EmbeddedWatermark


@dataclass(frozen=True)
class RobustnessAssessment:
    """Robustness of one embedded watermark against removal attacks."""

    architecture: str
    blind_attack: AttackOutcome
    informed_attack: AttackOutcome

    @property
    def survives_blind_attack(self) -> bool:
        """True when a structural attacker cannot fully excise the watermark."""
        return not self.blind_attack.watermark_fully_removed

    @property
    def removal_breaks_system(self) -> bool:
        """True when removing the watermark impairs the host design."""
        return self.informed_attack.system_impaired

    @property
    def robust(self) -> bool:
        """The paper's notion of improved robustness.

        A watermark is considered robust when either the attacker cannot
        find it structurally, or removing it (even with full knowledge)
        damages the functional system.
        """
        return self.survives_blind_attack or self.removal_breaks_system

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"architecture: {self.architecture}",
            f"  blind structural attack removed {len(self.blind_attack.removed_instances)} "
            f"instances (recall {self.blind_attack.recall:.0%})",
            f"  watermark fully removed by blind attack: {self.blind_attack.watermark_fully_removed}",
            f"  informed removal breaks functional logic: {self.removal_breaks_system} "
            f"({self.informed_attack.collateral_damage} functional instances affected)",
            f"  robust: {self.robust}",
        ]
        return "\n".join(lines)


def assess_robustness(
    embedded: EmbeddedWatermark,
    attack: Optional[RemovalAttack] = None,
) -> RobustnessAssessment:
    """Assess an embedded watermark against blind and informed removal."""
    attack = attack or RemovalAttack()
    netlist = embedded.netlist()
    blind = attack.execute(netlist)
    informed_targets = set(embedded.watermark_instances)
    # An informed attacker of the clock-modulation scheme must also rip out
    # the modulated enable wiring, i.e. the nets feeding the host's clock
    # gates -- which is what damages the design.
    informed = attack.execute_informed(netlist, informed_targets)
    return RobustnessAssessment(
        architecture=embedded.architecture.value,
        blind_attack=blind,
        informed_attack=informed,
    )
