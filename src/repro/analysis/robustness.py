"""Robustness comparison of the two watermark architectures (Section VI).

Two complementary notions of robustness are assessed:

* **structural** (:func:`assess_robustness`) -- can an RTL-level attacker
  locate and excise the watermark without breaking the host design?
* **detection** (:func:`assess_detection_robustness`) -- how much
  power-domain masking (noise injection or enable starvation) does it take
  to defeat CPA?  These sweeps are Monte-Carlo campaigns whose trial
  matrices are synthesized by the vectorized trace-synthesis engine
  (:class:`repro.power.synthesis.TraceSynthesizer`) and whose trials all
  run through the batched detection engine
  (:class:`repro.detection.batch.BatchCPADetector`) -- no per-cycle Python
  loop on either the generation or the detection side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.attacks import AttackOutcome, MaskingAttack, RemovalAttack
from repro.analysis.masking import MaskingStudy, sweep_kwargs_from_synthesis
from repro.core.config import DetectionConfig, SynthesisConfig
from repro.core.embedding import EmbeddedWatermark


@dataclass(frozen=True)
class RobustnessAssessment:
    """Robustness of one embedded watermark against removal attacks."""

    architecture: str
    blind_attack: AttackOutcome
    informed_attack: AttackOutcome

    @property
    def survives_blind_attack(self) -> bool:
        """True when a structural attacker cannot fully excise the watermark."""
        return not self.blind_attack.watermark_fully_removed

    @property
    def removal_breaks_system(self) -> bool:
        """True when removing the watermark impairs the host design."""
        return self.informed_attack.system_impaired

    @property
    def robust(self) -> bool:
        """The paper's notion of improved robustness.

        A watermark is considered robust when either the attacker cannot
        find it structurally, or removing it (even with full knowledge)
        damages the functional system.
        """
        return self.survives_blind_attack or self.removal_breaks_system

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"architecture: {self.architecture}",
            f"  blind structural attack removed {len(self.blind_attack.removed_instances)} "
            f"instances (recall {self.blind_attack.recall:.0%})",
            f"  watermark fully removed by blind attack: {self.blind_attack.watermark_fully_removed}",
            f"  informed removal breaks functional logic: {self.removal_breaks_system} "
            f"({self.informed_attack.collateral_damage} functional instances affected)",
            f"  robust: {self.robust}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class DetectionRobustnessAssessment:
    """Robustness of the watermark's *detectability* against masking attacks."""

    noise_study: MaskingStudy
    starvation_study: MaskingStudy

    @property
    def survives_noise_injection(self) -> bool:
        """Detection succeeded at every evaluated masking-noise level."""
        return self.noise_study.still_detected_everywhere()

    @property
    def survives_starvation(self) -> bool:
        """Detection succeeded at every evaluated enable duty."""
        return self.starvation_study.still_detected_everywhere()

    @property
    def masking_noise_to_defeat_w(self) -> Optional[float]:
        """Smallest evaluated masking power that defeated detection."""
        failed = [p.masking_noise_w for p in self.noise_study.points if not p.detected]
        return min(failed) if failed else None

    @property
    def starvation_duty_to_defeat(self) -> Optional[float]:
        """Largest evaluated enable duty at which detection already failed."""
        failed = [p.enable_duty for p in self.starvation_study.points if not p.detected]
        return max(failed) if failed else None

    def summary(self) -> str:
        """Human-readable summary of both masking sweeps."""
        noise = self.masking_noise_to_defeat_w
        duty = self.starvation_duty_to_defeat
        lines = [
            f"  noise injection defeats detection at: "
            + ("not within sweep" if noise is None else f"{noise * 1e3:.1f} mW"),
            f"  starvation defeats detection at duty: "
            + ("not within sweep" if duty is None else f"{duty:.2f}"),
        ]
        return "\n".join(lines)


def assess_detection_robustness(
    sequence: np.ndarray,
    watermark_amplitude_w: float = 1.5e-3,
    base_noise_sigma_w: float = 43e-3,
    attack: Optional[MaskingAttack] = None,
    num_cycles: Optional[int] = None,
    trials_per_point: Optional[int] = None,
    detection_config: Optional[DetectionConfig] = None,
    seed: int = 0,
    compat_draw_order: Optional[bool] = None,
    gaussian_dtype: Optional[object] = None,
    synthesis: Optional[SynthesisConfig] = None,
) -> DetectionRobustnessAssessment:
    """Sweep masking attacks against the watermark's detectability.

    Runs the noise-injection and enable-starvation campaigns of
    ``attack`` (a default :class:`MaskingAttack` if none is given); every
    Monte-Carlo trial of a sweep is evaluated in one batched CPA pass.

    ``num_cycles``, ``trials_per_point``, ``detection_config``,
    ``compat_draw_order`` and ``gaussian_dtype`` parameterise the default
    attack (unset keywords keep :class:`MaskingAttack`'s own defaults --
    the latter two select the trial-synthesis Gaussian path, e.g.
    ``compat_draw_order=False, gaussian_dtype=np.float32`` for
    campaign-scale sweeps); an explicitly passed ``attack`` already
    carries them, so combining both is rejected rather than silently
    ignoring the keywords.

    ``synthesis`` accepts the declarative
    :class:`repro.core.config.SynthesisConfig` a
    :class:`repro.core.spec.ScenarioSpec` carries; it expands to the
    same trial-synthesis knobs and is mutually exclusive with passing
    ``compat_draw_order``/``gaussian_dtype`` directly.
    """
    if synthesis is not None and (
        compat_draw_order is not None or gaussian_dtype is not None
    ):
        raise ValueError(
            "pass the trial-synthesis knobs either via 'synthesis' or as "
            "individual keywords, not both"
        )
    overrides = {
        key: value
        for key, value in {
            "trials_per_point": trials_per_point,
            "num_cycles": num_cycles,
            "detection_config": detection_config,
            "compat_draw_order": compat_draw_order,
            "gaussian_dtype": gaussian_dtype,
        }.items()
        if value is not None
    }
    if synthesis is not None:
        overrides.update(sweep_kwargs_from_synthesis(synthesis))
    if attack is None:
        attack = MaskingAttack(**overrides)
    elif overrides:
        raise ValueError(
            "pass campaign parameters either on the MaskingAttack or as "
            "keywords, not both"
        )
    noise_study = attack.sweep_noise_injection(
        sequence,
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        seed=seed,
    )
    starvation_study = attack.sweep_starvation(
        sequence,
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        seed=seed + 1,
    )
    return DetectionRobustnessAssessment(
        noise_study=noise_study,
        starvation_study=starvation_study,
    )


def assess_robustness(
    embedded: EmbeddedWatermark,
    attack: Optional[RemovalAttack] = None,
) -> RobustnessAssessment:
    """Assess an embedded watermark against blind and informed removal."""
    attack = attack or RemovalAttack()
    netlist = embedded.netlist()
    blind = attack.execute(netlist)
    informed_targets = set(embedded.watermark_instances)
    # An informed attacker of the clock-modulation scheme must also rip out
    # the modulated enable wiring, i.e. the nets feeding the host's clock
    # gates -- which is what damages the design.
    informed = attack.execute_informed(netlist, informed_targets)
    return RobustnessAssessment(
        architecture=embedded.architecture.value,
        blind_attack=blind,
        informed_attack=informed,
    )
