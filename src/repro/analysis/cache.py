"""Incremental lint result cache: warm runs skip unchanged files.

The project pass split the work cleanly: the expensive per-file half
(parse, per-module rules, pragma table, :class:`ModuleSummary`
extraction) depends only on that file's bytes and the rule set, while
the cross-module half (project rules, DEAD001, baseline) is cheap pure
Python over the summaries.  So the cache persists exactly the per-file
half -- one JSON entry per source file -- and the engine re-runs the
cross-module half every time.

Validation is two-tier, like any honest build cache:

* fast path: ``st_mtime_ns`` + ``st_size`` equal to the recorded stat --
  trust the entry without reading the file;
* slow path: stat drifted (checkout, ``touch``) -- hash the content;
  a matching sha256 is still a hit (the entry's stat is refreshed).

Entries also record a *rules signature* (sorted active rule ids + the
extraction-format version): linting with a different rule set, or after
a summary-format change, misses rather than serving stale results.
Writes go through the same atomic tmp-file + ``os.replace`` pattern as
``pipeline.store.ResultStore`` -- a crashed run never leaves a torn
entry for the next one to read.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.engine import Finding, ModuleRecord, Rule

__all__ = ["LintCache", "rules_signature"]

#: Bump when the ModuleSummary/ModuleRecord serialization changes shape;
#: every existing cache entry misses after a bump.
CACHE_FORMAT_VERSION = 1


def rules_signature(rules: Sequence[Rule]) -> str:
    """A short digest of the active rule set + cache format version."""
    payload = json.dumps(
        {
            "format": CACHE_FORMAT_VERSION,
            "rules": sorted(rule.rule_id for rule in rules),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class LintCache:
    """One directory of per-file lint entries (see the module docstring)."""

    def __init__(self, cache_dir: Path, signature: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.signature = signature
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # - entry location -

    def _entry_path(self, path: Path) -> Path:
        digest = hashlib.sha256(str(path.resolve()).encode()).hexdigest()[:32]
        return self.cache_dir / f"{digest}.json"

    @staticmethod
    def _stat_of(path: Path) -> Optional[Tuple[int, int]]:
        try:
            stat = path.stat()
        except OSError:
            return None
        return stat.st_mtime_ns, stat.st_size

    @staticmethod
    def _content_hash(path: Path) -> Optional[str]:
        try:
            return hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError:
            return None

    # - lookup / store -

    def lookup(self, path: Path) -> Optional[ModuleRecord]:
        """The cached :class:`ModuleRecord` for ``path``, or ``None``."""
        entry_path = self._entry_path(path)
        try:
            entry = json.loads(entry_path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("signature") != self.signature:
            self.misses += 1
            return None
        current = self._stat_of(path)
        if current is None:
            self.misses += 1
            return None
        recorded = (entry.get("mtime_ns"), entry.get("size"))
        if recorded != current:
            # stat drifted; the content decides
            content = self._content_hash(path)
            if content is None or content != entry.get("sha256"):
                self.misses += 1
                return None
            entry["mtime_ns"], entry["size"] = current
            self._atomic_write(entry_path, entry)
        self.hits += 1
        return self._decode(entry)

    def store(self, path: Path, record: ModuleRecord) -> None:
        """Persist the module pass result for ``path`` atomically."""
        current = self._stat_of(path)
        content = self._content_hash(path)
        if current is None or content is None:
            return  # fixture-only module with no backing file: nothing to cache
        entry = {
            "signature": self.signature,
            "mtime_ns": current[0],
            "size": current[1],
            "sha256": content,
            "record": self._encode(record),
        }
        self._atomic_write(self._entry_path(path), entry)

    # - serialization -

    @staticmethod
    def _encode(record: ModuleRecord) -> Dict[str, object]:
        summary = record.summary
        if summary is not None and not isinstance(summary, dict):
            summary = summary.to_json_dict()  # type: ignore[attr-defined]
        return {
            "logical_path": record.logical_path,
            "findings": [finding.to_json_dict() for finding in record.findings],
            "pragmas": [
                [line, rule_id, reason]
                for (line, rule_id), reason in sorted(record.pragmas.items())
            ],
            "summary": summary,
        }

    @staticmethod
    def _decode(entry: Dict[str, object]) -> Optional[ModuleRecord]:
        raw = entry.get("record")
        if not isinstance(raw, dict):
            return None
        try:
            findings = [
                Finding.from_json_dict(item) for item in raw["findings"]  # type: ignore[union-attr,index]
            ]
            pragmas = {
                (int(line), str(rule_id)): str(reason)
                for line, rule_id, reason in raw["pragmas"]  # type: ignore[union-attr,index]
            }
            summary = raw.get("summary")
        except (KeyError, TypeError, ValueError):
            return None
        return ModuleRecord(
            logical_path=str(raw["logical_path"]),
            findings=findings,
            pragmas=pragmas,
            summary=summary if isinstance(summary, dict) else None,
        )

    # - atomic write (the ResultStore pattern) -

    @staticmethod
    def _atomic_write(path: Path, payload: Dict[str, object]) -> None:
        data = json.dumps(payload, sort_keys=True).encode()
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
