"""Operating-point (DVFS) study of watermark detectability.

The paper measures at one corner (1.2 V, 10 MHz).  Products using the same
IP may run at scaled supply voltages and clock frequencies, which changes
the watermark's absolute power (switching energy scales with V^2, power with
frequency) while the bench noise does not shrink accordingly.  This study
sweeps voltage/frequency corners and reports the expected correlation and
the acquisition length needed for reliable detection at each corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.architectures import ClockModulationWatermark, WatermarkArchitecture
from repro.core.config import WatermarkConfig
from repro.detection.metrics import estimate_required_cycles, expected_correlation
from repro.power.estimator import PowerEstimator
from repro.power.models import OperatingPoint
from repro.rtl.signals import Clock


@dataclass(frozen=True)
class CornerResult:
    """Detectability figures at one voltage/frequency corner."""

    voltage_v: float
    frequency_hz: float
    watermark_amplitude_w: float
    noise_sigma_w: float
    expected_rho: float
    required_cycles: int

    @property
    def required_time_s(self) -> float:
        """Wall-clock acquisition time needed at this corner."""
        return self.required_cycles / self.frequency_hz


@dataclass
class OperatingPointStudy:
    """Results of a DVFS sweep."""

    corners: List[CornerResult] = field(default_factory=list)

    def corner(self, voltage_v: float, frequency_hz: float) -> CornerResult:
        """Look up one corner."""
        for corner in self.corners:
            if abs(corner.voltage_v - voltage_v) < 1e-9 and abs(corner.frequency_hz - frequency_hz) < 1e-3:
                return corner
        raise KeyError(f"no corner at {voltage_v} V / {frequency_hz} Hz")

    def to_text(self) -> str:
        """Render the sweep as a text table."""
        lines = [
            f"{'V (V)':>6} {'f (MHz)':>8} {'WM amplitude':>13} {'rho':>8} "
            f"{'cycles needed':>14} {'time needed':>12}",
        ]
        for corner in self.corners:
            lines.append(
                f"{corner.voltage_v:>6.2f} {corner.frequency_hz / 1e6:>8.1f} "
                f"{corner.watermark_amplitude_w * 1e3:>10.2f} mW {corner.expected_rho:>8.4f} "
                f"{corner.required_cycles:>14,} {corner.required_time_s * 1e3:>9.1f} ms"
            )
        return "\n".join(lines)


def run_operating_point_study(
    corners: Sequence[Tuple[float, float]] = ((1.2, 10e6), (1.0, 10e6), (0.8, 10e6), (1.2, 50e6), (1.0, 50e6)),
    watermark: Optional[WatermarkArchitecture] = None,
    noise_sigma_at_nominal_w: float = 43e-3,
    noise_frequency_exponent: float = 0.5,
) -> OperatingPointStudy:
    """Sweep supply/frequency corners for a given watermark.

    ``noise_sigma_at_nominal_w`` is the per-cycle acquisition noise at the
    paper's corner; averaging fewer oscilloscope samples per (shorter) cycle
    raises the per-cycle noise as ``(f / f_nominal)**noise_frequency_exponent``.
    """
    if noise_sigma_at_nominal_w <= 0:
        raise ValueError("noise sigma must be positive")
    study = OperatingPointStudy()
    for voltage, frequency in corners:
        if voltage <= 0 or frequency <= 0:
            raise ValueError("voltage and frequency must be positive")
        estimator = PowerEstimator(
            OperatingPoint(clock=Clock("clk", frequency), voltage_v=voltage)
        )
        corner_watermark = watermark or ClockModulationWatermark.from_config(WatermarkConfig())
        amplitude = corner_watermark.average_active_load_power(estimator)
        noise = noise_sigma_at_nominal_w * (frequency / 10e6) ** noise_frequency_exponent
        rho = expected_correlation(amplitude, noise)
        required = estimate_required_cycles(rho, corner_watermark.sequence_period)
        study.corners.append(
            CornerResult(
                voltage_v=voltage,
                frequency_hz=frequency,
                watermark_amplitude_w=amplitude,
                noise_sigma_w=noise,
                expected_rho=rho,
                required_cycles=required,
            )
        )
    return study
