"""SARIF 2.1.0 reporter: repro-lint findings as CI code-scanning input.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest to annotate diffs.  This emitter is
hand-rolled against the 2.1.0 schema -- no third-party dependency -- and
kept to the subset those consumers read:

* ``runs[].tool.driver.rules``: one descriptor per registered rule
  (id, short/full description, default ``error`` level);
* ``runs[].results``: one result per finding with ``ruleId``,
  ``ruleIndex``, ``message.text`` and a single physical location
  (``artifactLocation.uri`` + ``region.startLine``);
* suppressed findings are *included* with a ``suppressions`` entry
  (``inSource`` for pragmas, ``external`` for baseline matches) so the
  suppression inventory is visible to the scanner, per §3.27.23.

The shape is pinned by ``tests/test_analysis_reporting.py``, which
validates the required-property skeleton of the 2.1.0 schema.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.engine import META_RULE_ID, Finding, Rule

__all__ = ["render_sarif", "sarif_dict"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_VERSION = "2.0.0"
_INFO_URI = "https://example.invalid/repro-lint"


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title or rule.rule_id},
        "fullDescription": {"text": rule.rationale or rule.title or rule.rule_id},
        "defaultConfiguration": {"level": "error"},
    }


def _meta_rule_descriptor() -> Dict[str, object]:
    return {
        "id": META_RULE_ID,
        "name": "LintMetaRule",
        "shortDescription": {"text": "lint inventory hygiene"},
        "fullDescription": {
            "text": (
                "Malformed/unknown/reason-less suppression pragmas, "
                "malformed baseline entries and unparseable files."
            )
        },
        "defaultConfiguration": {"level": "error"},
    }


def _uri(path: str) -> str:
    return path.replace("\\", "/")


def sarif_dict(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Rule]] = None,
) -> Dict[str, object]:
    """The SARIF log as a JSON-able dict (see :func:`render_sarif`)."""
    if rules is None:
        from repro.analysis.rules import ALL_RULES

        rules = ALL_RULES
    descriptors = [_meta_rule_descriptor()]
    descriptors.extend(_rule_descriptor(rule) for rule in rules)
    index_of = {str(d["id"]): i for i, d in enumerate(descriptors)}

    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(finding.path)},
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        if finding.rule_id in index_of:
            result["ruleIndex"] = index_of[finding.rule_id]
        if finding.suppressed:
            result["suppressions"] = [
                {
                    "kind": "external" if finding.baselined else "inSource",
                    "justification": finding.suppression_reason or "",
                }
            ]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": _TOOL_VERSION,
                        "informationUri": _INFO_URI,
                        "rules": descriptors,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Optional[Sequence[Rule]] = None,
) -> str:
    """The SARIF 2.1.0 report (the ``--format=sarif`` / ``--sarif`` output)."""
    return json.dumps(sarif_dict(findings, rules), indent=2, sort_keys=True)
