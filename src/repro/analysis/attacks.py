"""Removal-attack analysis (Section VI of the paper).

A third party with access to the soft IP (RTL) tries to locate and excise
the watermark.  The attack modelled here is structural: the attacker looks
for *stand-alone* sub-circuits -- weakly connected clusters that are small
relative to the design, are dominated by sequential cells, and drive no
functional logic -- which is exactly what the baseline load-circuit
watermark looks like.  The clock-modulation watermark offers no such
cluster: its WGC output feeds the enable of clock gates that also serve
functional registers, so removing the suspicious logic breaks the host
design (quantified as functional components that lose their clock-enable
drivers).

Besides the structural attacker, :class:`MaskingAttack` models the
power-domain adversary who leaves the RTL untouched and instead tries to
drown or starve the watermark at measurement time; its sweeps are
Monte-Carlo campaigns evaluated in one batched CPA pass per sweep
(:class:`repro.detection.batch.BatchCPADetector`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.core.config import DetectionConfig
from repro.rtl.netlist import Netlist


@dataclass(frozen=True)
class ClusterCandidate:
    """A weakly connected cluster considered by the attacker."""

    instances: frozenset
    registers: int
    cells: int
    drives_functional_logic: bool

    @property
    def size(self) -> int:
        """Number of instances in the cluster."""
        return len(self.instances)


def find_standalone_clusters(
    netlist: Netlist,
    max_fraction_of_design: float = 0.45,
    min_registers: int = 8,
) -> List[ClusterCandidate]:
    """Clusters an attacker would shortlist as probable watermark circuits.

    A cluster is suspicious when it is (a) small relative to the whole
    design, (b) register-heavy (the load circuit is a bank of shift
    registers) and (c) does not drive any logic outside itself.
    """
    if not 0.0 < max_fraction_of_design <= 1.0:
        raise ValueError("max_fraction_of_design must be in (0, 1]")
    total_cells = max(1, netlist.total_cells)
    candidates: List[ClusterCandidate] = []
    for cluster in netlist.weakly_connected_clusters():
        stats = netlist.subgraph_stats(cluster)
        drives_external = False
        for name in cluster:
            for successor in netlist.fan_out(name):
                if successor not in cluster:
                    drives_external = True
                    break
            if drives_external:
                break
        candidate = ClusterCandidate(
            instances=frozenset(cluster),
            registers=stats["registers"],
            cells=stats["cells"],
            drives_functional_logic=drives_external,
        )
        fraction = candidate.cells / total_cells
        if (
            fraction <= max_fraction_of_design
            and candidate.registers >= min_registers
            and not candidate.drives_functional_logic
        ):
            candidates.append(candidate)
    return sorted(candidates, key=lambda c: c.registers, reverse=True)


@dataclass
class AttackOutcome:
    """Result of a removal attack on one netlist."""

    removed_instances: Set[str] = field(default_factory=set)
    true_watermark_instances: Set[str] = field(default_factory=set)
    functional_instances_removed: Set[str] = field(default_factory=set)
    broken_functional_instances: Set[str] = field(default_factory=set)

    @property
    def watermark_found(self) -> bool:
        """Whether the attacker removed at least part of the watermark."""
        return bool(self.removed_instances & self.true_watermark_instances)

    @property
    def watermark_fully_removed(self) -> bool:
        """Whether every watermark instance was removed."""
        return self.true_watermark_instances.issubset(self.removed_instances)

    @property
    def recall(self) -> float:
        """Fraction of watermark instances the attack removed."""
        if not self.true_watermark_instances:
            return 0.0
        return len(self.removed_instances & self.true_watermark_instances) / len(
            self.true_watermark_instances
        )

    @property
    def precision(self) -> float:
        """Fraction of removed instances that actually were watermark."""
        if not self.removed_instances:
            return 0.0
        return len(self.removed_instances & self.true_watermark_instances) / len(
            self.removed_instances
        )

    @property
    def collateral_damage(self) -> int:
        """Functional instances removed or left without drivers."""
        return len(self.functional_instances_removed) + len(self.broken_functional_instances)

    @property
    def system_impaired(self) -> bool:
        """Whether the host design no longer functions after the attack."""
        return self.collateral_damage > 0


class RemovalAttack:
    """A structural removal attack against an embedded watermark."""

    def __init__(
        self,
        max_fraction_of_design: float = 0.45,
        min_registers: int = 8,
        remove_suspicious_enable_logic: bool = True,
    ) -> None:
        self.max_fraction_of_design = max_fraction_of_design
        self.min_registers = min_registers
        self.remove_suspicious_enable_logic = remove_suspicious_enable_logic

    def select_targets(self, netlist: Netlist) -> Set[str]:
        """Instances the attacker decides to remove."""
        targets: Set[str] = set()
        for candidate in find_standalone_clusters(
            netlist,
            max_fraction_of_design=self.max_fraction_of_design,
            min_registers=self.min_registers,
        ):
            targets |= set(candidate.instances)
        return targets

    @staticmethod
    def _evaluate_removal(netlist: Netlist, targets: Set[str]) -> AttackOutcome:
        """Evaluate what removing ``targets`` does to the design.

        Functional damage is quantified as functional sequential instances
        (registers, clock gates) that lose at least one direct driver --
        e.g. a host clock gate whose enable cone contained the watermark
        logic and is now severed.
        """
        truth = set(netlist.component_names(role="watermark"))
        functional_removed = {name for name in targets if name in netlist and netlist.role(name) == "functional"}
        broken_functional: Set[str] = set()
        sequential_types = ("dff", "icg", "register_bank")
        for name in netlist.component_names():
            if name in targets:
                continue
            if netlist.role(name) != "functional":
                continue
            if netlist.component(name).cell_type not in sequential_types:
                continue
            if set(netlist.fan_in(name)) & targets:
                broken_functional.add(name)
        return AttackOutcome(
            removed_instances=targets,
            true_watermark_instances=truth,
            functional_instances_removed=functional_removed,
            broken_functional_instances=broken_functional,
        )

    def execute(self, netlist: Netlist) -> AttackOutcome:
        """Run the blind structural attack and evaluate its consequences."""
        targets = self.select_targets(netlist)
        return self._evaluate_removal(netlist, targets)

    def execute_informed(self, netlist: Netlist, known_instances: Iterable[str]) -> AttackOutcome:
        """An attack by an adversary who somehow identified the watermark.

        Used to quantify the damage a *successful* removal causes: for the
        clock-modulation watermark even a perfectly informed removal severs
        the clock-enable path of functional registers.
        """
        targets = set(known_instances)
        missing = targets - set(netlist.component_names())
        if missing:
            raise KeyError(f"unknown instances in informed attack: {sorted(missing)}")
        return self._evaluate_removal(netlist, targets)


@dataclass
class MaskingAttack:
    """A power-domain adversary who hides the watermark instead of removing it.

    The attacker either injects uncorrelated switching activity
    (``masking_noise_levels_w``) or starves the watermarked sub-module's
    clock-gate enable (``enable_duties``).  Each sweep is a Monte-Carlo
    campaign (``trials_per_point`` trials per level) whose trials are all
    evaluated in one batched CPA pass.

    ``compat_draw_order``/``gaussian_dtype`` select the trial-synthesis
    Gaussian path (:meth:`repro.power.synthesis.TraceSynthesizer.synthesize_trials`):
    the defaults reproduce the pinned per-trial random stream; campaign-scale
    sweeps can opt into the fast chunked path and ``float32`` matrices.
    """

    masking_noise_levels_w: Sequence[float] = (0.0, 50e-3, 100e-3, 200e-3, 400e-3)
    enable_duties: Sequence[float] = (1.0, 0.5, 0.25, 0.1, 0.02)
    trials_per_point: int = 1
    num_cycles: int = 300_000
    detection_config: Optional[DetectionConfig] = None
    max_trials_per_chunk: Optional[int] = None
    compat_draw_order: bool = True
    gaussian_dtype: object = np.float64

    @classmethod
    def with_synthesis(cls, synthesis, **kwargs) -> "MaskingAttack":
        """An attack whose trial-synthesis knobs come from a declarative
        :class:`repro.core.config.SynthesisConfig` (as carried by a
        :class:`repro.core.spec.ScenarioSpec`)."""
        from repro.analysis.masking import sweep_kwargs_from_synthesis

        mapped = sweep_kwargs_from_synthesis(synthesis)
        overlap = set(mapped) & set(kwargs)
        if overlap:
            raise ValueError(
                f"pass {sorted(overlap)} via the SynthesisConfig, not as keywords"
            )
        return cls(**kwargs, **mapped)

    def sweep_noise_injection(
        self,
        sequence: np.ndarray,
        watermark_amplitude_w: float = 1.5e-3,
        base_noise_sigma_w: float = 43e-3,
        seed: int = 0,
    ):
        """Noise-injection sweep; returns a :class:`repro.analysis.masking.MaskingStudy`."""
        from repro.analysis.masking import run_noise_masking_study

        return run_noise_masking_study(
            sequence,
            watermark_amplitude_w=watermark_amplitude_w,
            base_noise_sigma_w=base_noise_sigma_w,
            masking_noise_levels_w=self.masking_noise_levels_w,
            num_cycles=self.num_cycles,
            detection_config=self.detection_config,
            seed=seed,
            trials_per_point=self.trials_per_point,
            max_trials_per_chunk=self.max_trials_per_chunk,
            compat_draw_order=self.compat_draw_order,
            gaussian_dtype=self.gaussian_dtype,
        )

    def sweep_starvation(
        self,
        sequence: np.ndarray,
        watermark_amplitude_w: float = 1.5e-3,
        base_noise_sigma_w: float = 43e-3,
        seed: int = 0,
    ):
        """Enable-starvation sweep; returns a :class:`repro.analysis.masking.MaskingStudy`."""
        from repro.analysis.masking import run_starvation_study

        return run_starvation_study(
            sequence,
            watermark_amplitude_w=watermark_amplitude_w,
            base_noise_sigma_w=base_noise_sigma_w,
            enable_duties=self.enable_duties,
            num_cycles=self.num_cycles,
            detection_config=self.detection_config,
            seed=seed,
            trials_per_point=self.trials_per_point,
            max_trials_per_chunk=self.max_trials_per_chunk,
            compat_draw_order=self.compat_draw_order,
            gaussian_dtype=self.gaussian_dtype,
        )
