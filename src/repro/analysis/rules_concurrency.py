"""The project-wide concurrency & seed-flow rule pack (repro-lint v2).

Five rules over the :class:`~repro.analysis.project.LintProject` symbol
table + call graph, guarding the invariants the concurrent subsystems
(threaded service, supervised fork pool, shared caches) and the future
``backend="thread"`` rely on:

========== =====================================================================
CONC001    lock discipline: an attribute guarded by a ``Lock``/``RLock``
           in *any* method must be accessed under that lock in *every*
           method/function of the same class (or module, for globals);
           flags the off-lock read and read-modify-write
CONC002    fork-after-thread: no ``os.fork`` / ``Process(...)`` start in
           code reachable from a module that starts threads, outside the
           sanctioned supervisor (``pipeline/backends.py``)
CONC003    thread-shared caches must be the locking ``caching.LRUCache``:
           no bare-dict get-or-create memoization in ``service/``,
           ``pipeline/`` or ``caching.py``
RNG002     seed-stream collision: two ``default_rng(...)`` call sites
           reachable in one sweep cell whose seed expressions are
           syntactically identical draw the *same* stream
DEAD001    stale suppression: an ``allow[ID]`` pragma whose target line no
           longer triggers ID (and an expired baseline entry) is itself a
           violation -- the suppression inventory must stay live
========== =====================================================================

CONC001--003 and RNG002 are :class:`ProjectRule` subclasses; DEAD001 is a
post-pass the engine runs once per module after every other rule reported.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, Rule
from repro.analysis.project import (
    MODULE_BODY,
    AttrAccess,
    LintProject,
    ModuleSummary,
    ProjectRule,
)

__all__ = [
    "ForkAfterThreadRule",
    "LockDisciplineRule",
    "SeedStreamCollisionRule",
    "SharedCacheRule",
    "StalePragmaRule",
]

Violations = List[Tuple[str, int, str]]


# -- CONC001 ---------------------------------------------------------------------


class LockDisciplineRule(ProjectRule):
    rule_id = "CONC001"
    title = "lock-guarded state must be accessed under its lock everywhere"
    rationale = (
        "An attribute taken under a Lock/RLock in one method is shared "
        "mutable state; touching it bare in another method is a data race "
        "the interpreter will not flag and the thread backend will hit."
    )

    def check_project(self, project: LintProject) -> Violations:
        found: Violations = []
        for summary in project.modules.values():
            for class_summary in summary.classes.values():
                found.extend(
                    self._check_scope(
                        summary.logical_path,
                        class_summary.accesses,
                        lock_names=set(class_summary.lock_attrs),
                        owner=class_summary.name,
                        attr_fmt="self.{attr}",
                        lock_fmt="self.{lock}",
                    )
                )
            found.extend(
                self._check_scope(
                    summary.logical_path,
                    summary.global_accesses,
                    lock_names=set(summary.global_locks),
                    owner=summary.module_key or summary.logical_path,
                    attr_fmt="{attr}",
                    lock_fmt="{lock}",
                )
            )
        return found

    def _check_scope(
        self,
        path: str,
        accesses: Sequence[AttrAccess],
        lock_names: Set[str],
        owner: str,
        attr_fmt: str,
        lock_fmt: str,
    ) -> Violations:
        # Attributes mutated outside __init__ (module bodies count as
        # init for globals): only those are shared *state*; attributes
        # assigned once at construction and read thereafter are config.
        mutable: Set[str] = set()
        guards: Dict[str, Set[str]] = {}
        for access in accesses:
            if access.attr in lock_names:
                continue
            if (
                access.mode in ("write", "rmw")
                and not access.in_init
                and access.function != MODULE_BODY
            ):
                mutable.add(access.attr)
            if access.locks:
                guards.setdefault(access.attr, set()).update(access.locks)
        found: Violations = []
        for access in accesses:
            if access.attr in lock_names or access.attr not in mutable:
                continue
            guarding = guards.get(access.attr)
            if not guarding:
                continue
            if access.locks or access.in_init or access.function == MODULE_BODY:
                continue
            lock_name = lock_fmt.format(lock=sorted(guarding)[0])
            attr_name = attr_fmt.format(attr=access.attr)
            verb = "read" if access.mode == "read" else "read-modify-write of"
            where = (
                access.function
                if "." in access.function
                else f"{owner}.{access.function}"
            )
            found.append(
                (
                    path,
                    access.line,
                    f"off-lock {verb} {attr_name} in {where}"
                    f"; it is guarded by {lock_name} elsewhere -- every "
                    "access must hold that lock",
                )
            )
        return found


# -- CONC002 ---------------------------------------------------------------------

#: The supervised worker pool: the one module allowed to spawn processes.
_SANCTIONED_FORK_MODULE = "pipeline/backends.py"


class ForkAfterThreadRule(ProjectRule):
    rule_id = "CONC002"
    title = "no fork/Process start reachable from thread-starting code"
    rationale = (
        "fork() only clones the calling thread: locks held by other "
        "threads stay locked forever in the child. Process spawning must "
        "stay inside the supervised pool (pipeline/backends.py), which "
        "owns the fork context and crash recovery."
    )

    def check_project(self, project: LintProject) -> Violations:
        thread_reached = project.thread_rooted()
        thread_modules = sorted(
            key for key, summary in project.modules.items() if summary.starts_threads
        )
        found: Violations = []
        for key, summary in project.modules.items():
            if key == _SANCTIONED_FORK_MODULE:
                continue
            for qualname, function in summary.functions.items():
                if not function.fork_calls:
                    continue
                fid = project.function_id(key, qualname)
                hazardous = summary.starts_threads or fid in thread_reached
                if not hazardous:
                    continue
                witness = key if summary.starts_threads else (
                    thread_modules[0] if thread_modules else "?"
                )
                for line, api in function.fork_calls:
                    found.append(
                        (
                            summary.logical_path,
                            line,
                            f"{api} in {qualname} is reachable from "
                            f"thread-starting module {witness}; forking "
                            "after threads exist deadlocks inherited locks "
                            "-- spawn through the supervised pool in "
                            f"{_SANCTIONED_FORK_MODULE}",
                        )
                    )
        return found


# -- CONC003 ---------------------------------------------------------------------

#: Modules whose shared mappings must be the locking LRUCache.
_CACHE_SCOPES = ("service/", "pipeline/")
_CACHE_MODULES = ("caching.py",)

#: The sanctioned implementation itself (class, module).
_SANCTIONED_CACHE = ("LRUCache", "caching.py")


class SharedCacheRule(ProjectRule):
    rule_id = "CONC003"
    title = "thread-shared caches must be caching.LRUCache"
    rationale = (
        "A bare-dict get-or-create in threaded modules is an unbounded, "
        "racy cache: check-then-insert interleaves, and nothing evicts. "
        "caching.LRUCache is locked, bounded and first-insert-wins."
    )

    def _in_scope(self, summary: ModuleSummary) -> bool:
        key = summary.module_key
        return key.startswith(_CACHE_SCOPES) or key in _CACHE_MODULES

    def check_project(self, project: LintProject) -> Violations:
        found: Violations = []
        for key, summary in project.modules.items():
            if not self._in_scope(summary):
                continue
            # group the ops of one mapping within one function
            grouped: Dict[Tuple[str, str, str], List] = {}
            for op in summary.cache_ops:
                if (op.scope, key) == _SANCTIONED_CACHE:
                    continue
                grouped.setdefault((op.scope, op.target, op.function), []).append(op)
            for (scope, target, function), ops in sorted(grouped.items()):
                kinds = {op.op for op in ops}
                if "guard" not in kinds or "store" not in kinds:
                    continue
                store_line = min(op.line for op in ops if op.op == "store")
                owner = function if "." in function or not scope else (
                    f"{scope}.{function}"
                )
                locked = all(op.locks for op in ops)
                detail = (
                    "even hand-locked dicts are unbounded and easy to touch "
                    "off-lock" if locked else "the check-then-insert is racy"
                )
                found.append(
                    (
                        summary.logical_path,
                        store_line,
                        f"bare-dict get-or-create on '{target}' in {owner}; "
                        f"{detail} -- use caching.LRUCache for thread-shared "
                        "memoization",
                    )
                )
        return found


# -- RNG002 ----------------------------------------------------------------------


class SeedStreamCollisionRule(ProjectRule):
    rule_id = "RNG002"
    title = "no identically-seeded default_rng sites in one sweep cell"
    rationale = (
        "Two default_rng(...) sites with the same seed expression, both "
        "reachable while executing one sweep cell, draw the *same* "
        "stream: noise correlates with signal and Monte-Carlo variance "
        "silently halves. Streams must be per-contributor "
        "(SeedSequence.spawn or distinct derivation)."
    )

    #: Call-graph roots: executing one sweep cell starts here.
    root_modules = ("pipeline/stages.py", "pipeline/runner.py")

    def check_project(self, project: LintProject) -> Violations:
        roots: List[str] = []
        for module_key in self.root_modules:
            roots.extend(project.functions_of_module(module_key))
        if not roots:
            return []
        reached = project.reachable_from(roots)
        sites: Dict[str, List[Tuple[str, int, str, str]]] = {}
        for key, summary in project.modules.items():
            for qualname, function in summary.functions.items():
                if project.function_id(key, qualname) not in reached:
                    continue
                for line, seed_src in function.rng_calls:
                    if not seed_src:
                        continue  # unseeded: fresh OS entropy, RNG001's turf
                    sites.setdefault(seed_src, []).append(
                        (summary.logical_path, line, qualname, key)
                    )
        found: Violations = []
        for seed_src, group in sorted(sites.items()):
            distinct = sorted(set(group))
            if len(distinct) < 2:
                continue
            for path, line, qualname, key in distinct:
                # collision partners named by stable module key, not the
                # invocation-dependent path, so baseline entries match
                # however the lint was launched
                others = [
                    f"{o_key}:{o_line}"
                    for o_path, o_line, _, o_key in distinct
                    if (o_path, o_line) != (path, line)
                ]
                found.append(
                    (
                        path,
                        line,
                        f"default_rng({seed_src}) in {qualname} collides with "
                        f"{', '.join(others)} -- identical seed expression "
                        "reachable in one sweep cell yields one shared "
                        "stream; derive per-contributor seeds",
                    )
                )
        return found


# -- DEAD001 ---------------------------------------------------------------------


class StalePragmaRule(Rule):
    """Stale ``allow[ID]`` pragmas (run by the engine as a post-pass).

    Not a :class:`ProjectRule`: it needs the per-module pragma table and
    the *other* rules' findings, which only the engine holds.  The engine
    calls :meth:`audit` once per module after module and project rules.
    """

    rule_id = "DEAD001"
    title = "suppression pragmas must suppress a live finding"
    rationale = (
        "A pragma that no longer matches a finding is a silenced alarm "
        "wired to nothing: the violation it excused is gone (or moved), "
        "and the next real one on that line would be invisibly excused."
    )

    def check(self, module) -> List[Tuple[int, str]]:  # type: ignore[override]
        return []

    def audit(
        self,
        pragmas: Dict[Tuple[int, str], str],
        findings: Sequence[Finding],
        active_ids: Set[str],
    ) -> List[Tuple[int, str]]:
        """Stale pragmas given every finding reported for the module."""
        matched = {(finding.line, finding.rule_id) for finding in findings}
        found: List[Tuple[int, str]] = []
        for (line, rule_id), reason in sorted(pragmas.items()):
            if rule_id not in active_ids or rule_id == self.rule_id:
                continue
            if (line, rule_id) in matched:
                continue
            found.append(
                (
                    line,
                    f"stale pragma: allow[{rule_id}] ({reason!r}) suppresses "
                    "nothing on this line; delete it or move it to the "
                    "violation it excuses",
                )
            )
        return found
