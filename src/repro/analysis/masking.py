"""Masking attacks: hiding the watermark instead of removing it.

Section VI of the paper treats *removal* attacks.  A weaker but cheaper
adversary can instead try to *mask* the watermark: leave the RTL untouched
but degrade the IP vendor's detection capability, either by injecting random
dummy switching activity (raising the noise floor) or by running the device
only in states where the watermarked sub-module's original clock-gate enable
is low (starving the watermark of power).  This module quantifies how much
masking power or duty-cycle starvation is needed to defeat CPA at a given
acquisition length -- the flip side of the detection-probability analysis in
:mod:`repro.detection.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import DetectionConfig
from repro.detection.cpa import CPADetector


@dataclass(frozen=True)
class MaskingPoint:
    """Detection outcome under one masking configuration."""

    masking_noise_w: float
    enable_duty: float
    detected: bool
    peak_correlation: float
    z_score: float


@dataclass
class MaskingStudy:
    """Results of a masking-attack sweep."""

    watermark_amplitude_w: float
    base_noise_sigma_w: float
    num_cycles: int
    points: List[MaskingPoint] = field(default_factory=list)

    def detection_defeated_at(self) -> Optional[MaskingPoint]:
        """First sweep point at which the watermark is no longer detected."""
        for point in self.points:
            if not point.detected:
                return point
        return None

    def still_detected_everywhere(self) -> bool:
        """Whether the watermark survived every evaluated masking level."""
        return all(point.detected for point in self.points)

    def to_text(self) -> str:
        """Render the sweep as a text table."""
        lines = [
            f"Masking study ({self.num_cycles} cycles, watermark amplitude "
            f"{self.watermark_amplitude_w * 1e3:.2f} mW, base noise "
            f"{self.base_noise_sigma_w * 1e3:.1f} mW):",
            f"{'masking noise':>14} {'enable duty':>12} {'peak rho':>10} {'z':>7} {'detected':>9}",
        ]
        for point in self.points:
            lines.append(
                f"{point.masking_noise_w * 1e3:>11.1f} mW {point.enable_duty:>12.2f} "
                f"{point.peak_correlation:>10.4f} {point.z_score:>7.1f} {str(point.detected):>9}"
            )
        return "\n".join(lines)


def _simulate_detection(
    sequence: np.ndarray,
    num_cycles: int,
    watermark_amplitude_w: float,
    noise_sigma_w: float,
    enable_duty: float,
    detector: CPADetector,
    rng: np.random.Generator,
    base_power_w: float = 5e-3,
) -> MaskingPoint:
    period = len(sequence)
    tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
    offset = int(rng.integers(0, period))
    watermark = tiled[offset : offset + num_cycles].astype(float)
    # Starvation: the host's original CLK_CTRL is only high for a fraction of
    # the cycles, and the watermark only draws power when both are high
    # (Fig. 1(b): the effective enable is WMARK AND CLK_CTRL).
    if enable_duty < 1.0:
        gate = rng.random(num_cycles) < enable_duty
        watermark = watermark * gate
    measured = (
        base_power_w
        + watermark * watermark_amplitude_w
        + rng.normal(0.0, noise_sigma_w, num_cycles)
    )
    result = detector.detect(sequence, measured)
    return MaskingPoint(
        masking_noise_w=0.0,
        enable_duty=enable_duty,
        detected=result.detected,
        peak_correlation=result.peak_correlation,
        z_score=result.z_score,
    )


def run_noise_masking_study(
    sequence: np.ndarray,
    watermark_amplitude_w: float = 1.5e-3,
    base_noise_sigma_w: float = 43e-3,
    masking_noise_levels_w: Sequence[float] = (0.0, 50e-3, 100e-3, 200e-3, 400e-3),
    num_cycles: int = 300_000,
    detection_config: Optional[DetectionConfig] = None,
    seed: int = 0,
) -> MaskingStudy:
    """Sweep the amount of random masking activity an attacker injects.

    The masking activity is uncorrelated with the watermark sequence, so it
    only raises the noise floor; the study shows how much extra switching
    power (and therefore energy cost to the attacker's product) is needed to
    push the correlation peak below the detection threshold at the paper's
    acquisition length.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    detector = CPADetector(detection_config or DetectionConfig())
    rng = np.random.default_rng(seed)
    study = MaskingStudy(
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        num_cycles=num_cycles,
    )
    for masking in masking_noise_levels_w:
        if masking < 0:
            raise ValueError("masking noise must be non-negative")
        total_sigma = float(np.sqrt(base_noise_sigma_w**2 + masking**2))
        point = _simulate_detection(
            sequence,
            num_cycles,
            watermark_amplitude_w,
            total_sigma,
            enable_duty=1.0,
            detector=detector,
            rng=rng,
        )
        study.points.append(
            MaskingPoint(
                masking_noise_w=float(masking),
                enable_duty=1.0,
                detected=point.detected,
                peak_correlation=point.peak_correlation,
                z_score=point.z_score,
            )
        )
    return study


def run_starvation_study(
    sequence: np.ndarray,
    watermark_amplitude_w: float = 1.5e-3,
    base_noise_sigma_w: float = 43e-3,
    enable_duties: Sequence[float] = (1.0, 0.5, 0.25, 0.1, 0.02),
    num_cycles: int = 300_000,
    detection_config: Optional[DetectionConfig] = None,
    seed: int = 0,
) -> MaskingStudy:
    """Sweep the fraction of cycles in which the modulated clock gate may open.

    Models an adversary (or simply an unfortunate workload) that keeps the
    watermarked sub-module's functional clock-gate enable low most of the
    time; the watermark amplitude scales with the duty and detection
    eventually fails, quantifying the paper's remark that the watermark can
    be exercised while the system is inactive to avoid exactly this.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    detector = CPADetector(detection_config or DetectionConfig())
    rng = np.random.default_rng(seed)
    study = MaskingStudy(
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        num_cycles=num_cycles,
    )
    for duty in enable_duties:
        if not 0.0 <= duty <= 1.0:
            raise ValueError("enable duty must be within [0, 1]")
        study.points.append(
            _simulate_detection(
                sequence,
                num_cycles,
                watermark_amplitude_w,
                base_noise_sigma_w,
                enable_duty=duty,
                detector=detector,
                rng=rng,
            )
        )
    return study
