"""Masking attacks: hiding the watermark instead of removing it.

Section VI of the paper treats *removal* attacks.  A weaker but cheaper
adversary can instead try to *mask* the watermark: leave the RTL untouched
but degrade the IP vendor's detection capability, either by injecting random
dummy switching activity (raising the noise floor) or by running the device
only in states where the watermarked sub-module's original clock-gate enable
is low (starving the watermark of power).  This module quantifies how much
masking power or duty-cycle starvation is needed to defeat CPA at a given
acquisition length -- the flip side of the detection-probability analysis in
:mod:`repro.detection.campaign`.

All sweep points (and, with ``trials_per_point > 1``, all Monte-Carlo
trials per point) share one acquisition length, so the whole sweep is
evaluated as a single trial matrix by
:class:`repro.detection.batch.BatchCPADetector` instead of one CPA round
trip per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.config import DetectionConfig, SynthesisConfig
from repro.detection.batch import BatchCPADetector, BatchCPAResult
from repro.power.synthesis import TraceSynthesizer


def sweep_kwargs_from_synthesis(synthesis: SynthesisConfig) -> dict:
    """Map a declarative :class:`SynthesisConfig` onto the sweep keywords.

    Used by the pipeline stages (and anyone driving the sweeps from a
    :class:`repro.core.spec.ScenarioSpec`) so the spec's serialized dtype
    name becomes the actual numpy dtype the engines expect.
    """
    return {
        "max_trials_per_chunk": synthesis.max_trials_per_chunk,
        "compat_draw_order": synthesis.compat_draw_order,
        "gaussian_dtype": np.dtype(synthesis.gaussian_dtype),
    }


@dataclass(frozen=True)
class MaskingPoint:
    """Detection outcome under one masking configuration.

    ``detected`` reports whether the watermark was detected in a strict
    majority of the Monte-Carlo trials at this sweep point, so the defeat
    metrics stay stable as ``trials_per_point`` grows; with the default
    single trial it is simply that trial's outcome.
    ``peak_correlation`` and ``z_score`` are averaged over the trials.
    """

    masking_noise_w: float
    enable_duty: float
    detected: bool
    peak_correlation: float
    z_score: float
    trials: int = 1
    detections: Optional[int] = None

    @property
    def detection_probability(self) -> float:
        """Fraction of Monte-Carlo trials in which detection succeeded."""
        if self.trials <= 0:
            return 0.0
        if self.detections is None:
            return 1.0 if self.detected else 0.0
        return self.detections / self.trials


@dataclass
class MaskingStudy:
    """Results of a masking-attack sweep."""

    watermark_amplitude_w: float
    base_noise_sigma_w: float
    num_cycles: int
    points: List[MaskingPoint] = field(default_factory=list)

    def detection_defeated_at(self) -> Optional[MaskingPoint]:
        """First sweep point at which the watermark is no longer detected."""
        for point in self.points:
            if not point.detected:
                return point
        return None

    def still_detected_everywhere(self) -> bool:
        """Whether the watermark survived every evaluated masking level."""
        return all(point.detected for point in self.points)

    def to_text(self) -> str:
        """Render the sweep as a text table."""
        lines = [
            f"Masking study ({self.num_cycles} cycles, watermark amplitude "
            f"{self.watermark_amplitude_w * 1e3:.2f} mW, base noise "
            f"{self.base_noise_sigma_w * 1e3:.1f} mW):",
            f"{'masking noise':>14} {'enable duty':>12} {'peak rho':>10} {'z':>7} "
            f"{'P(detect)':>10} {'detected':>9}",
        ]
        for point in self.points:
            lines.append(
                f"{point.masking_noise_w * 1e3:>11.1f} mW {point.enable_duty:>12.2f} "
                f"{point.peak_correlation:>10.4f} {point.z_score:>7.1f} "
                f"{point.detection_probability:>10.2f} {str(point.detected):>9}"
            )
        return "\n".join(lines)


def _run_sweep(
    sequence: np.ndarray,
    num_cycles: int,
    watermark_amplitude_w: float,
    noise_sigmas: Sequence[float],
    enable_duties: Sequence[float],
    trials_per_point: int,
    rng: np.random.Generator,
    detector: BatchCPADetector,
    base_power_w: float = 5e-3,
    max_trials_per_chunk: Optional[int] = None,
    compat_draw_order: bool = True,
    gaussian_dtype: Union[np.dtype, type, str] = np.float64,
) -> Optional[BatchCPAResult]:
    """Synthesize and detect the trial rows of a masking sweep.

    One row per (sweep point, trial), in sweep order; with the default
    ``compat_draw_order=True`` each row draws its random phase offset,
    starvation gate and acquisition noise in the same order a per-trial
    simulation would, so the random stream (and therefore every detection
    outcome) is independent of ``max_trials_per_chunk``, which only bounds
    how many rows are materialised and detected at once.
    ``compat_draw_order=False`` switches the synthesis to the fast chunked
    Gaussian path and ``gaussian_dtype=np.float32`` halves trial-matrix
    memory -- both change the exact noise realisation (not the campaign
    statistics), and in fast mode the realisation *does* depend on the
    chunk boundaries (offsets and noise are drawn per chunk), so golden
    sweeps keep the compat defaults.
    The rows themselves come out of
    :meth:`repro.power.synthesis.TraceSynthesizer.synthesize_trials` (one
    batched modular gather per chunk; starvation gates model the host's
    CLK_CTRL being low part of the time, Fig. 1(b): the effective enable is
    WMARK AND CLK_CTRL).  An empty sweep (no levels) returns ``None``.
    """
    if max_trials_per_chunk is not None and max_trials_per_chunk <= 0:
        raise ValueError("max_trials_per_chunk must be positive")
    total_rows = len(noise_sigmas) * trials_per_point
    if total_rows == 0:
        return None
    synthesizer = TraceSynthesizer.from_sequence(
        sequence,
        watermark_amplitude_w=watermark_amplitude_w,
        noise_sigma_w=0.0,
        base_power_w=base_power_w,
    )
    chunk_size = total_rows if max_trials_per_chunk is None else int(max_trials_per_chunk)

    specs = [
        (sigma, duty)
        for sigma, duty in zip(noise_sigmas, enable_duties)
        for _ in range(trials_per_point)
    ]
    batches: List[BatchCPAResult] = []
    for start in range(0, total_rows, chunk_size):
        chunk_specs = specs[start : start + chunk_size]
        batches.append(
            synthesizer.detect_trials(
                detector,
                len(chunk_specs),
                num_cycles,
                rng,
                noise_sigmas=[sigma for sigma, _ in chunk_specs],
                enable_duties=[duty for _, duty in chunk_specs],
                compat_draw_order=compat_draw_order,
                dtype=gaussian_dtype,
            )
        )
    if len(batches) == 1:
        return batches[0]
    return BatchCPAResult.concatenate(batches)


def _aggregate_points(
    batch: BatchCPAResult,
    masking_noise_levels_w: Sequence[float],
    enable_duties: Sequence[float],
    trials_per_point: int,
) -> List[MaskingPoint]:
    """Collapse the batched per-trial results back into per-point statistics."""
    points: List[MaskingPoint] = []
    for index, (masking, duty) in enumerate(zip(masking_noise_levels_w, enable_duties)):
        rows = slice(index * trials_per_point, (index + 1) * trials_per_point)
        detections = int(np.count_nonzero(batch.detected[rows]))
        points.append(
            MaskingPoint(
                masking_noise_w=float(masking),
                enable_duty=float(duty),
                detected=2 * detections > trials_per_point,
                peak_correlation=float(batch.peak_correlations[rows].mean()),
                z_score=float(batch.z_scores[rows].mean()),
                trials=trials_per_point,
                detections=detections,
            )
        )
    return points


def run_noise_masking_study(
    sequence: np.ndarray,
    watermark_amplitude_w: float = 1.5e-3,
    base_noise_sigma_w: float = 43e-3,
    masking_noise_levels_w: Sequence[float] = (0.0, 50e-3, 100e-3, 200e-3, 400e-3),
    num_cycles: int = 300_000,
    detection_config: Optional[DetectionConfig] = None,
    seed: int = 0,
    trials_per_point: int = 1,
    max_trials_per_chunk: Optional[int] = None,
    compat_draw_order: bool = True,
    gaussian_dtype: Union[np.dtype, type, str] = np.float64,
) -> MaskingStudy:
    """Sweep the amount of random masking activity an attacker injects.

    The masking activity is uncorrelated with the watermark sequence, so it
    only raises the noise floor; the study shows how much extra switching
    power (and therefore energy cost to the attacker's product) is needed to
    push the correlation peak below the detection threshold at the paper's
    acquisition length.  All sweep levels (times ``trials_per_point``
    Monte-Carlo trials each) are detected in one batched CPA pass;
    ``max_trials_per_chunk`` bounds how many trial rows are materialised
    and detected at once without changing any outcome.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    if trials_per_point <= 0:
        raise ValueError("trials_per_point must be positive")
    # Materialize once: generator inputs must not be consumed by validation.
    levels = [float(masking) for masking in masking_noise_levels_w]
    for masking in levels:
        if masking < 0:
            raise ValueError("masking noise must be non-negative")
    total_sigmas = [
        float(np.sqrt(base_noise_sigma_w**2 + masking**2)) for masking in levels
    ]
    duties = [1.0] * len(total_sigmas)
    rng = np.random.default_rng(seed)
    detector = BatchCPADetector(detection_config or DetectionConfig())
    batch = _run_sweep(
        sequence,
        num_cycles,
        watermark_amplitude_w,
        total_sigmas,
        duties,
        trials_per_point,
        rng,
        detector,
        max_trials_per_chunk=max_trials_per_chunk,
        compat_draw_order=compat_draw_order,
        gaussian_dtype=gaussian_dtype,
    )
    study = MaskingStudy(
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        num_cycles=num_cycles,
    )
    if batch is not None:
        study.points = _aggregate_points(batch, levels, duties, trials_per_point)
    return study


def run_starvation_study(
    sequence: np.ndarray,
    watermark_amplitude_w: float = 1.5e-3,
    base_noise_sigma_w: float = 43e-3,
    enable_duties: Sequence[float] = (1.0, 0.5, 0.25, 0.1, 0.02),
    num_cycles: int = 300_000,
    detection_config: Optional[DetectionConfig] = None,
    seed: int = 0,
    trials_per_point: int = 1,
    max_trials_per_chunk: Optional[int] = None,
    compat_draw_order: bool = True,
    gaussian_dtype: Union[np.dtype, type, str] = np.float64,
) -> MaskingStudy:
    """Sweep the fraction of cycles in which the modulated clock gate may open.

    Models an adversary (or simply an unfortunate workload) that keeps the
    watermarked sub-module's functional clock-gate enable low most of the
    time; the watermark amplitude scales with the duty and detection
    eventually fails, quantifying the paper's remark that the watermark can
    be exercised while the system is inactive to avoid exactly this.  All
    duties (times ``trials_per_point`` Monte-Carlo trials each) are detected
    in one batched CPA pass; ``max_trials_per_chunk`` bounds how many trial
    rows are materialised and detected at once without changing any outcome.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    if trials_per_point <= 0:
        raise ValueError("trials_per_point must be positive")
    # Materialize once: generator inputs must not be consumed by validation.
    duties = [float(duty) for duty in enable_duties]
    for duty in duties:
        if not 0.0 <= duty <= 1.0:
            raise ValueError("enable duty must be within [0, 1]")
    sigmas = [base_noise_sigma_w] * len(duties)
    rng = np.random.default_rng(seed)
    detector = BatchCPADetector(detection_config or DetectionConfig())
    batch = _run_sweep(
        sequence,
        num_cycles,
        watermark_amplitude_w,
        sigmas,
        duties,
        trials_per_point,
        rng,
        detector,
        max_trials_per_chunk=max_trials_per_chunk,
        compat_draw_order=compat_draw_order,
        gaussian_dtype=gaussian_dtype,
    )
    study = MaskingStudy(
        watermark_amplitude_w=watermark_amplitude_w,
        base_noise_sigma_w=base_noise_sigma_w,
        num_cycles=num_cycles,
    )
    if batch is not None:
        study.points = _aggregate_points(
            batch, [0.0] * len(duties), duties, trials_per_point
        )
    return study
