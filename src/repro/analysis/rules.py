"""The repro-lint rule set: this repository's invariants, machine-checked.

Each rule codifies one hard-won guarantee (see the engine docstring in
:mod:`repro.analysis.engine`):

========== =====================================================================
RNG001     no global-state randomness; all draws flow through a seeded
           ``np.random.Generator``
DET001     no wall-clock/entropy calls outside the sanctioned provenance clock
HOT001     no per-cycle/per-trial Python loops in hot modules unless pragma'd
           as a golden-reference path
CACHE001   cache-serving compute callables must freeze (``writeable=False``)
           the arrays they hand to a shared cache, and nothing may re-thaw them
EXC001     ``pipeline/`` and ``service/`` must never catch the
           ``BaseException``-derived control-flow exceptions
           (``CellTimeout``/``SweepInterrupted``) by accident
SCHEMA001  ``ScenarioSpec``/``ScenarioResult``/``Provenance`` field sets must
           match the pinned ``schema_manifest.json``; drift requires a schema
           version bump (and a manifest update) in the same change
FROZEN001  config dataclasses in ``core/spec.py``/``core/config.py`` stay
           ``frozen=True`` with no mutable default fields
========== =====================================================================

The rules are pure AST analyses -- no imports of the linted code -- so the
linter runs on any checkout, broken or not.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import LintModule, Rule

__all__ = [
    "ALL_RULES",
    "RULE_INDEX",
    "CacheFreezeRule",
    "DeterminismRule",
    "ExceptionDisciplineRule",
    "FrozenConfigRule",
    "GlobalRandomnessRule",
    "HotLoopRule",
    "SchemaManifestRule",
    "schema_manifest_path",
]

Violations = List[Tuple[int, str]]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _name_words(identifier: str) -> Set[str]:
    """Lower-case underscore-separated words of one identifier."""
    return {word for word in identifier.lower().split("_") if word}


# -- RNG001 ----------------------------------------------------------------------

#: ``np.random`` attributes that *construct* seeded generators (allowed);
#: everything else on ``np.random`` is the legacy global-state API.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "Philox",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
}

#: ``random``-module attributes that are seeded instances, not global state.
_STDLIB_RANDOM_ALLOWED = {"Random"}


class GlobalRandomnessRule(Rule):
    rule_id = "RNG001"
    title = "no global-state randomness"
    rationale = (
        "Global RNG state (np.random.seed/normal/..., random.*) breaks "
        "bit-identical replay across backends and resume; every draw must "
        "flow through a np.random.Generator threaded from a spec seed."
    )

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
                    if parts[2] not in _NP_RANDOM_ALLOWED:
                        found.append(
                            (
                                node.lineno,
                                f"global-state numpy randomness {dotted}(); draw "
                                "through a seeded np.random.Generator instead",
                            )
                        )
                elif parts[0] == "random" and len(parts) >= 2:
                    if parts[1] not in _STDLIB_RANDOM_ALLOWED:
                        found.append(
                            (
                                node.lineno,
                                f"global-state stdlib randomness {dotted}(); draw "
                                "through a seeded np.random.Generator instead",
                            )
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        found.append(
                            (
                                node.lineno,
                                "import of the global-state stdlib random module",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    banned = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _STDLIB_RANDOM_ALLOWED
                    ]
                    if banned:
                        found.append(
                            (
                                node.lineno,
                                "from random import "
                                f"{', '.join(banned)} pulls in global-state "
                                "randomness",
                            )
                        )
                elif node.module == "numpy.random":
                    banned = [
                        alias.name
                        for alias in node.names
                        if alias.name not in _NP_RANDOM_ALLOWED
                    ]
                    if banned:
                        found.append(
                            (
                                node.lineno,
                                "from numpy.random import "
                                f"{', '.join(banned)} pulls in global-state "
                                "randomness",
                            )
                        )
        return found


# -- DET001 ----------------------------------------------------------------------

#: Dotted-call suffixes that read the wall clock or OS entropy.  Matching
#: is suffix-at-a-dot, so ``datetime.datetime.now`` matches ``datetime.now``.
_CLOCK_ENTROPY_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: ``from <module> import <name>`` pairs that smuggle the same calls in
#: under bare names the call-site scan cannot see.
_CLOCK_ENTROPY_IMPORTS = {
    "time": {"time", "time_ns"},
    "os": {"urandom"},
    "uuid": {"uuid1", "uuid4"},
}


def _matches_suffix(dotted: str, suffix: str) -> bool:
    return dotted == suffix or dotted.endswith("." + suffix)


class DeterminismRule(Rule):
    rule_id = "DET001"
    title = "no wall-clock or entropy calls"
    rationale = (
        "Results must be a pure function of (spec, seed, code version); "
        "time.time/datetime.now/os.urandom/uuid4 belong only in the one "
        "sanctioned provenance-stamping helper."
    )

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] == "secrets":
                    found.append(
                        (node.lineno, f"entropy call {dotted}() is nondeterministic")
                    )
                    continue
                for suffix in _CLOCK_ENTROPY_SUFFIXES:
                    if _matches_suffix(dotted, suffix):
                        found.append(
                            (
                                node.lineno,
                                f"wall-clock/entropy call {dotted}(); results "
                                "must be a pure function of the spec and seed "
                                "(provenance stamping goes through "
                                "provenance_clock())",
                            )
                        )
                        break
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets":
                        found.append(
                            (node.lineno, "import of the entropy module secrets")
                        )
            elif isinstance(node, ast.ImportFrom):
                banned_names = _CLOCK_ENTROPY_IMPORTS.get(node.module or "")
                if node.module == "secrets":
                    found.append(
                        (node.lineno, "import from the entropy module secrets")
                    )
                elif banned_names:
                    smuggled = [
                        alias.name for alias in node.names if alias.name in banned_names
                    ]
                    if smuggled:
                        found.append(
                            (
                                node.lineno,
                                f"from {node.module} import "
                                f"{', '.join(smuggled)} smuggles in a "
                                "wall-clock/entropy call under a bare name",
                            )
                        )
        return found


# -- HOT001 ----------------------------------------------------------------------

#: Module keys (or directory prefixes) on the measured hot path.
_HOT_PREFIXES = ("detection/", "power/")
_HOT_MODULES = {"soc/chip.py", "soc/cpu.py"}

#: Identifier words that mark a loop as iterating per cycle/trial.
_HOT_WORDS = {
    "cycle",
    "cycles",
    "trial",
    "trials",
    "repetition",
    "repetitions",
    "period",
    "periods",
    "rotation",
    "rotations",
}


def _identifiers_in(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _hot_words_in(node: ast.AST) -> Set[str]:
    words: Set[str] = set()
    for identifier in _identifiers_in(node):
        words |= _name_words(identifier) & _HOT_WORDS
    return words


def _range_call(node: ast.AST) -> Optional[ast.Call]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    ):
        return node
    return None


class HotLoopRule(Rule):
    rule_id = "HOT001"
    title = "no per-cycle Python loops in hot modules"
    rationale = (
        "The north star is trace synthesis and detection as fast as the "
        "hardware allows; a Python-level loop over cycles/trials in "
        "detection/, power/, soc/chip.py or soc/cpu.py reintroduces the "
        "O(n) interpreter overhead the batched engines removed.  Golden "
        "reference paths stay, explicitly pragma'd."
    )

    def applies_to(self, module: LintModule) -> bool:
        key = module.module_key
        return key in _HOT_MODULES or any(
            key.startswith(prefix) for prefix in _HOT_PREFIXES
        )

    def check(self, module: LintModule) -> Violations:
        found: Violations = []

        def flag(line: int, construct: str, words: Iterable[str]) -> None:
            found.append(
                (
                    line,
                    f"{construct} iterates per {'/'.join(sorted(words))} in a "
                    "hot module; vectorize it or pragma it as a "
                    "golden-reference path",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                rng = _range_call(node.iter)
                if rng is None:
                    continue
                words = _hot_words_in(node.target) | set().union(
                    *(_hot_words_in(arg) for arg in rng.args), set()
                )
                if words:
                    flag(node.lineno, "for loop", words)
            elif isinstance(node, ast.While):
                words = _hot_words_in(node.test)
                if words:
                    flag(node.lineno, "while loop", words)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    rng = _range_call(generator.iter)
                    if rng is None:
                        continue
                    words = _hot_words_in(generator.target) | set().union(
                        *(_hot_words_in(arg) for arg in rng.args), set()
                    )
                    if words:
                        flag(node.lineno, "comprehension", words)
                        break
        return found


# -- CACHE001 --------------------------------------------------------------------


def _assign_freezes(node: ast.Assign) -> bool:
    """``x.flags.writeable = False``?"""
    if not (isinstance(node.value, ast.Constant) and node.value.value is False):
        return False
    return any(
        isinstance(target, ast.Attribute)
        and target.attr == "writeable"
        and isinstance(target.value, ast.Attribute)
        and target.value.attr == "flags"
        for target in node.targets
    )


def _assign_thaws(node: ast.Assign) -> bool:
    """``x.flags.writeable = True``?"""
    if not (isinstance(node.value, ast.Constant) and node.value.value is True):
        return False
    return any(
        isinstance(target, ast.Attribute)
        and target.attr == "writeable"
        and isinstance(target.value, ast.Attribute)
        and target.value.attr == "flags"
        for target in node.targets
    )


def _setflags_write(node: ast.Call) -> Optional[bool]:
    """The ``write=`` constant of a ``.setflags(...)`` call, if that's what it is."""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "setflags"):
        return None
    for keyword in node.keywords:
        if keyword.arg == "write" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return None


def _function_freezes_directly(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _assign_freezes(node):
            return True
        if isinstance(node, ast.Call) and _setflags_write(node) is False:
            return True
    return False


def _called_local_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


class CacheFreezeRule(Rule):
    rule_id = "CACHE001"
    title = "cache-served arrays must be frozen"
    rationale = (
        "Shared caches (LRUCache.get_or_compute) hand the same array to "
        "every caller; a compute callable that does not set "
        "writeable=False lets one caller silently corrupt every other "
        "caller's data -- the class of bug behind PR 3's template cache "
        "design.  Re-marking a served array writeable is equally banned."
    )

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        # All named function defs in the module, any nesting level: the
        # compute callables passed to get_or_compute are typically nested
        # closures over the cache key's inputs.
        functions: Dict[str, ast.AST] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node
        # Fixpoint: a function freezes if it does so directly or delegates
        # to a local function that freezes (one common idiom: a shared
        # ``_frozen_copy`` helper).
        freezers = {
            name for name, func in functions.items() if _function_freezes_directly(func)
        }
        changed = True
        while changed:
            changed = False
            for name, func in functions.items():
                if name in freezers:
                    continue
                if _called_local_names(func) & freezers:
                    freezers.add(name)
                    changed = True

        def compute_violation(call: ast.Call, compute: ast.AST) -> Optional[str]:
            if isinstance(compute, ast.Lambda):
                if isinstance(compute.body, ast.Call) and isinstance(
                    compute.body.func, ast.Name
                ):
                    callee = compute.body.func.id
                    if callee in freezers:
                        return None
                    return (
                        f"compute lambda delegates to {callee}(), which never "
                        "marks its result writeable=False before it is cached"
                    )
                return (
                    "compute lambda passed to a cache does not produce a "
                    "frozen (writeable=False) value"
                )
            if isinstance(compute, ast.Name):
                if compute.id in freezers:
                    return None
                return (
                    f"compute callable {compute.id}() never marks its result "
                    "writeable=False before it is cached"
                )
            return (
                "cannot verify the compute callable freezes "
                "(writeable=False) the value it hands to the cache"
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            write = _setflags_write(node)
            if write is True:
                found.append(
                    (
                        node.lineno,
                        "setflags(write=True) re-thaws an array; cache-served "
                        "arrays must stay read-only",
                    )
                )
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "get_or_compute"
            ):
                continue
            compute: Optional[ast.AST] = None
            if len(node.args) >= 2:
                compute = node.args[1]
            else:
                for keyword in node.keywords:
                    if keyword.arg == "compute":
                        compute = keyword.value
            if compute is None:
                continue
            problem = compute_violation(node, compute)
            if problem is not None:
                found.append((node.lineno, problem))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _assign_thaws(node):
                found.append(
                    (
                        node.lineno,
                        "flags.writeable = True re-thaws an array; "
                        "cache-served arrays must stay read-only",
                    )
                )
        return found


# -- EXC001 ----------------------------------------------------------------------

#: The BaseException-derived control-flow exceptions of the supervision
#: layer.  A handler naming one of these proves the author thought about
#: interrupt/timeout flow, which is what exempts a sibling
#: ``except Exception``.
_CONTROL_FLOW_NAMES = {"CellTimeout", "SweepInterrupted", "KeyboardInterrupt"}


def _exception_names(handler_type: Optional[ast.AST]) -> Set[str]:
    if handler_type is None:
        return set()
    nodes: Sequence[ast.AST]
    if isinstance(handler_type, ast.Tuple):
        nodes = handler_type.elts
    else:
        nodes = [handler_type]
    names: Set[str] = set()
    for node in nodes:
        dotted = _dotted_name(node)
        if dotted is not None:
            names.add(dotted.split(".")[-1])
        else:
            names.add("<dynamic>")
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


#: Module-key prefixes EXC001 polices.  ``service/`` request handlers
#: wrap everything in ``except Exception`` to produce 500 responses --
#: exactly the construct that would silently eat a sweep interrupt.
_EXC_PREFIXES = ("pipeline/", "service/")


class ExceptionDisciplineRule(Rule):
    rule_id = "EXC001"
    title = "pipeline/ and service/ must not swallow control-flow exceptions"
    rationale = (
        "CellTimeout and SweepInterrupted derive from BaseException "
        "precisely so except Exception cannot eat them; a bare except or "
        "except BaseException re-opens that hole, and a broad "
        "except Exception hides the failure taxonomy unless the handler "
        "re-raises or a sibling handler names the control-flow exceptions "
        "explicitly."
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module_key.startswith(_EXC_PREFIXES)

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            try_names: Set[str] = set()
            for handler in node.handlers:
                try_names |= _exception_names(handler.type)
            control_flow_handled = bool(try_names & _CONTROL_FLOW_NAMES)
            for handler in node.handlers:
                names = _exception_names(handler.type)
                if handler.type is None:
                    found.append(
                        (
                            handler.lineno,
                            "bare except swallows the BaseException-derived "
                            "CellTimeout/SweepInterrupted control flow",
                        )
                    )
                    continue
                if "BaseException" in names:
                    found.append(
                        (
                            handler.lineno,
                            "except BaseException swallows the "
                            "CellTimeout/SweepInterrupted control flow; never "
                            "catch BaseException",
                        )
                    )
                    continue
                if "Exception" in names and not (
                    _reraises(handler) or control_flow_handled
                ):
                    found.append(
                        (
                            handler.lineno,
                            f"broad except Exception in {module.module_key} "
                            "without a re-raise or an explicit sibling "
                            "CellTimeout/SweepInterrupted handler; narrow the "
                            "catch or name the control flow",
                        )
                    )
        return found


# -- SCHEMA001 -------------------------------------------------------------------


def schema_manifest_path() -> Path:
    """Where the pinned schema manifest lives."""
    return Path(__file__).resolve().parent / "schema_manifest.json"


#: (class name, version constant) pairs checked per module key.
_SCHEMA_SCOPE: Dict[str, Tuple[Tuple[str, ...], str, str]] = {
    "core/spec.py": (("ScenarioSpec",), "SPEC_SCHEMA_VERSION", "spec_schema_version"),
    "pipeline/artifacts.py": (
        ("ScenarioResult", "Provenance"),
        "ARTIFACT_SCHEMA_VERSION",
        "artifact_schema_version",
    ),
}


def _dataclass_field_names(cls: ast.ClassDef) -> List[str]:
    return [
        statement.target.id
        for statement in cls.body
        if isinstance(statement, ast.AnnAssign)
        and isinstance(statement.target, ast.Name)
    ]


class SchemaManifestRule(Rule):
    rule_id = "SCHEMA001"
    title = "serialized schemas must match the pinned manifest"
    rationale = (
        "ScenarioSpec/ScenarioResult/Provenance field sets are load-bearing "
        "wire formats (artifacts, the result store's code-version salt, the "
        "process backend).  Drifting a field set without bumping "
        "SPEC_SCHEMA_VERSION/ARTIFACT_SCHEMA_VERSION silently serves stale "
        "memoized results; the manifest forces the bump and the field "
        "change into the same reviewed diff."
    )

    def __init__(self, manifest: Optional[Dict[str, object]] = None) -> None:
        self._manifest = manifest

    def manifest(self) -> Dict[str, object]:
        if self._manifest is None:
            self._manifest = json.loads(schema_manifest_path().read_text())
        return self._manifest

    def applies_to(self, module: LintModule) -> bool:
        return module.module_key in _SCHEMA_SCOPE

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        class_names, version_constant, manifest_version_key = _SCHEMA_SCOPE[
            module.module_key
        ]
        manifest = self.manifest()
        classes = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        for class_name in class_names:
            cls = classes.get(class_name)
            if cls is None:
                continue
            pinned = list(manifest.get(class_name, []))
            actual = _dataclass_field_names(cls)
            if actual != pinned:
                added = sorted(set(actual) - set(pinned))
                removed = sorted(set(pinned) - set(actual))
                drift = []
                if added:
                    drift.append(f"added {added}")
                if removed:
                    drift.append(f"removed {removed}")
                if not drift:
                    drift.append(f"reordered to {actual}")
                found.append(
                    (
                        cls.lineno,
                        f"{class_name} fields drifted from "
                        f"schema_manifest.json ({'; '.join(drift)}); update "
                        f"the manifest and bump {version_constant} in the "
                        "same change",
                    )
                )
        pinned_version = manifest.get(manifest_version_key)
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == version_constant
                    and isinstance(node.value, ast.Constant)
                    and node.value.value != pinned_version
                ):
                    found.append(
                        (
                            node.lineno,
                            f"{version_constant} is {node.value.value!r} but "
                            f"schema_manifest.json pins {pinned_version!r}; "
                            "bump them together",
                        )
                    )
        return found


# -- FROZEN001 -------------------------------------------------------------------

_MUTABLE_DEFAULT_CALLS = {"list", "dict", "set", "bytearray"}
_MUTABLE_NUMPY_CALLS = {"array", "zeros", "ones", "empty", "full", "arange"}


def _dataclass_decorator(cls: ast.ClassDef) -> Optional[ast.AST]:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        dotted = _dotted_name(target)
        if dotted is not None and dotted.split(".")[-1] == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False  # bare @dataclass
    return any(
        keyword.arg == "frozen"
        and isinstance(keyword.value, ast.Constant)
        and keyword.value.value is True
        for keyword in decorator.keywords
    )


def _mutable_default(value: Optional[ast.AST]) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return "a mutable literal"
    if isinstance(value, ast.Call):
        dotted = _dotted_name(value.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if dotted in _MUTABLE_DEFAULT_CALLS:
            return f"a mutable {dotted}() value"
        if (
            parts[0] in ("np", "numpy")
            and len(parts) == 2
            and parts[1] in _MUTABLE_NUMPY_CALLS
        ):
            return f"a mutable {dotted}() array"
    return None


class FrozenConfigRule(Rule):
    rule_id = "FROZEN001"
    title = "config dataclasses stay frozen with immutable defaults"
    rationale = (
        "Specs and configs are cache keys and spec-hash inputs; a "
        "non-frozen config (or a shared mutable default) lets one scenario "
        "mutate every other scenario's identity in place."
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.module_key in ("core/spec.py", "core/config.py")

    def check(self, module: LintModule) -> Violations:
        found: Violations = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                found.append(
                    (
                        node.lineno,
                        f"config dataclass {node.name} must be "
                        "@dataclass(frozen=True)",
                    )
                )
            for statement in node.body:
                if not (
                    isinstance(statement, ast.AnnAssign)
                    and isinstance(statement.target, ast.Name)
                ):
                    continue
                problem = _mutable_default(statement.value)
                if problem is not None:
                    found.append(
                        (
                            statement.lineno,
                            f"field {node.name}.{statement.target.id} defaults "
                            f"to {problem}, shared across instances; use "
                            "field(default_factory=...)",
                        )
                    )
        return found


# -- registry --------------------------------------------------------------------

from repro.analysis.rules_concurrency import (  # noqa: E402  (registry import)
    ForkAfterThreadRule,
    LockDisciplineRule,
    SeedStreamCollisionRule,
    SharedCacheRule,
    StalePragmaRule,
)

ALL_RULES: Tuple[Rule, ...] = (
    GlobalRandomnessRule(),
    DeterminismRule(),
    HotLoopRule(),
    CacheFreezeRule(),
    ExceptionDisciplineRule(),
    SchemaManifestRule(),
    FrozenConfigRule(),
    LockDisciplineRule(),
    ForkAfterThreadRule(),
    SharedCacheRule(),
    SeedStreamCollisionRule(),
    StalePragmaRule(),
)

RULE_INDEX: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
