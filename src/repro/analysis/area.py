"""Area models for watermark hardware.

Area is reported both in flip-flop counts (the unit the paper uses for its
overhead argument -- "the watermark generation circuit requires only 12
registers") and in square micrometres using the synthetic 65 nm library's
cell areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.power.library import CellLibrary, TSMC65LP_LIKE


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of a circuit broken down by cell class."""

    name: str
    cell_counts: Mapping[str, int]
    area_um2_by_type: Mapping[str, float]

    @property
    def total_cells(self) -> int:
        """Total number of library cells."""
        return sum(self.cell_counts.values())

    @property
    def total_area_um2(self) -> float:
        """Total silicon area in square micrometres."""
        return sum(self.area_um2_by_type.values())

    @property
    def register_count(self) -> int:
        """Number of sequential cells (DFF class)."""
        return int(self.cell_counts.get("dff", 0))


class AreaModel:
    """Computes area figures from cell inventories."""

    def __init__(self, library: CellLibrary = TSMC65LP_LIKE) -> None:
        self.library = library

    def breakdown(self, name: str, cell_counts: Mapping[str, int]) -> AreaBreakdown:
        """Area breakdown of a circuit given as ``{cell_type: count}``."""
        for cell_type, count in cell_counts.items():
            if count < 0:
                raise ValueError(f"negative cell count for {cell_type!r}")
        areas = {
            cell_type: self.library.area_of(cell_type, count)
            for cell_type, count in cell_counts.items()
        }
        return AreaBreakdown(name=name, cell_counts=dict(cell_counts), area_um2_by_type=areas)

    def architecture_area(self, architecture) -> AreaBreakdown:
        """Area breakdown of a watermark architecture's *added* hardware.

        For the clock-modulation architecture reusing an existing IP block
        the modulated registers belong to the host design, so only the WGC
        is charged; the redundant-bank variant used on the test chips is
        charged in full (it adds 1,024 registers as a validation vehicle).
        """
        return self.breakdown(architecture.name, architecture.added_cell_inventory())

    def relative_overhead(
        self, watermark_cells: Mapping[str, int], system_cells: Mapping[str, int]
    ) -> float:
        """Watermark area as a fraction of the host system area."""
        watermark_area = self.breakdown("watermark", watermark_cells).total_area_um2
        system_area = self.breakdown("system", system_cells).total_area_um2
        if system_area <= 0:
            raise ValueError("system area must be positive")
        return watermark_area / system_area
