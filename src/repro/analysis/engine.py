"""repro-lint: the AST-based determinism & cache-safety lint engine.

Every pinned guarantee of this reproduction -- bit-identical
serial/process/resume sweeps, seed-stream compatibility, read-only
cache-served templates -- is an *invariant of the source*, not of any one
test run.  This engine walks Python files with per-rule AST visitors
(:mod:`repro.analysis.rules`) and reports violations of those invariants
at CI time, before a golden test has to catch them downstream.

Usage (also via ``python -m repro.analysis``)::

    findings = lint_paths(["src/"])
    print(render_text(findings))

Suppression pragma grammar
--------------------------

A finding is suppressed by a pragma **with a reason** on the same line or
on a standalone comment line directly above::

    value = datetime.datetime.now()  # repro-lint: allow[DET001] provenance stamp

    # repro-lint: allow[HOT001] golden reference path, pinned bit-identical
    for cycle in range(num_cycles):
        ...

A malformed pragma, an unknown rule id, or an empty reason is itself a
finding (``LINT001``) and cannot be suppressed: the suppression inventory
must stay auditable.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintModule",
    "Rule",
    "collect_pragmas",
    "lint_module",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]

#: Rule id of the engine's own findings: malformed/unknown/reason-less
#: pragmas and unparseable files.  Never suppressible.
META_RULE_ID = "LINT001"

_PRAGMA_MARKER = "repro-lint"
_PRAGMA_RE = re.compile(
    r"^#\s*repro-lint:\s*allow\[([A-Za-z0-9_-]+)\]\s*(.*?)\s*$"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, suppressed or not."""

    rule_id: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-able representation (the ``--format=json`` entry shape)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


@dataclasses.dataclass
class LintModule:
    """One parsed module handed to the rules.

    ``logical_path`` is the path rules scope on (and findings report);
    for fixture snippets in tests it need not exist on disk.
    ``module_key`` is the path relative to the ``repro`` package root
    (e.g. ``"pipeline/backends.py"``), or ``""`` when the file is not
    under a ``repro`` directory -- rules that scope to repo modules
    (hot paths, pipeline-only) match on it.
    """

    logical_path: str
    source: str
    tree: ast.Module
    module_key: str

    @classmethod
    def from_source(cls, source: str, logical_path: str) -> "LintModule":
        """Parse ``source`` (raises :class:`SyntaxError` on bad input)."""
        tree = ast.parse(source, filename=logical_path)
        return cls(
            logical_path=logical_path,
            source=source,
            tree=tree,
            module_key=module_key_for(logical_path),
        )


def module_key_for(logical_path: str) -> str:
    """The path of a file relative to its ``repro`` package directory."""
    parts = PurePosixPath(str(logical_path).replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return ""


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    returning ``(line, message)`` pairs; the engine attaches the rule id,
    the path and the suppression state.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, module: LintModule) -> bool:
        """Whether this rule inspects ``module`` at all (default: yes)."""
        return True

    def check(self, module: LintModule) -> List[Tuple[int, str]]:
        """Violations in ``module`` as ``(line, message)`` pairs."""
        raise NotImplementedError


# -- pragma collection -----------------------------------------------------------


def collect_pragmas(
    source: str, known_rule_ids: Iterable[str]
) -> Tuple[Dict[Tuple[int, str], str], List[Finding]]:
    """Parse every suppression pragma out of ``source``.

    Returns ``(pragmas, meta_findings)``: ``pragmas`` maps
    ``(line, rule_id)`` to the suppression reason (an inline pragma
    covers its own line, a standalone comment line covers the next
    line); ``meta_findings`` are the ``LINT001`` findings for malformed
    pragmas, unknown rule ids and missing reasons (path left empty --
    the engine fills it in).
    """
    known = set(known_rule_ids)
    pragmas: Dict[Tuple[int, str], str] = {}
    problems: List[Tuple[int, str]] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT or _PRAGMA_MARKER not in token.string:
            continue
        line = token.start[0]
        match = _PRAGMA_RE.match(token.string)
        if match is None:
            problems.append(
                (
                    line,
                    "malformed repro-lint pragma (expected "
                    "'# repro-lint: allow[RULE-ID] reason')",
                )
            )
            continue
        rule_id, reason = match.group(1), match.group(2)
        if rule_id not in known:
            problems.append((line, f"pragma names unknown rule {rule_id!r}"))
            continue
        if rule_id == META_RULE_ID:
            problems.append((line, f"{META_RULE_ID} findings cannot be suppressed"))
            continue
        if not reason:
            problems.append(
                (
                    line,
                    f"suppression of {rule_id} carries no reason; every "
                    "pragma must say why the violation is intentional",
                )
            )
            continue
        before_comment = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        target_line = line if before_comment.strip() else line + 1
        pragmas[(target_line, rule_id)] = reason
    findings = [
        Finding(rule_id=META_RULE_ID, path="", line=line, message=message)
        for line, message in problems
    ]
    return pragmas, findings


# -- linting ---------------------------------------------------------------------


def _default_rules() -> Sequence[Rule]:
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


def lint_module(
    module: LintModule, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run every rule over one parsed module."""
    active = list(rules) if rules is not None else list(_default_rules())
    # Pragmas naming any *registered* rule stay valid when linting with a
    # subset (--rules SCHEMA001 must not misread a DET001 pragma as
    # unknown); only genuinely unregistered ids are LINT001 findings.
    known_ids = (
        {rule.rule_id for rule in active}
        | {rule.rule_id for rule in _default_rules()}
        | {META_RULE_ID}
    )
    pragmas, meta_findings = collect_pragmas(module.source, known_ids)
    findings = [
        dataclasses.replace(finding, path=module.logical_path)
        for finding in meta_findings
    ]
    for rule in active:
        if not rule.applies_to(module):
            continue
        for line, message in rule.check(module):
            reason = pragmas.get((line, rule.rule_id))
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    path=module.logical_path,
                    line=line,
                    message=message,
                    suppressed=reason is not None,
                    suppression_reason=reason,
                )
            )
    return sorted(findings, key=lambda f: (f.line, f.rule_id, f.message))


def lint_source(
    source: str,
    logical_path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string (the fixture entry point used by the tests)."""
    try:
        module = LintModule.from_source(source, logical_path)
    except SyntaxError as error:
        return [
            Finding(
                rule_id=META_RULE_ID,
                path=logical_path,
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    return lint_module(module, rules)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, files_checked)``.  A missing path raises
    :class:`FileNotFoundError` (a CI job must not silently lint nothing);
    an unparseable file becomes a ``LINT001`` finding.
    """
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for path in files:
        findings.extend(lint_source(path.read_text(), str(path), rules))
    return findings, len(files)


# -- reporters -------------------------------------------------------------------


def unsuppressed(findings: Sequence[Finding]) -> List[Finding]:
    """The findings that actually fail a run."""
    return [finding for finding in findings if not finding.suppressed]


def render_text(
    findings: Sequence[Finding],
    files_checked: Optional[int] = None,
    show_suppressed: bool = False,
) -> str:
    """The human-readable report (one ``path:line: RULE-ID message`` per line)."""
    lines = []
    suppressed_count = 0
    for finding in findings:
        if finding.suppressed:
            suppressed_count += 1
            if show_suppressed:
                lines.append(
                    f"{finding.path}:{finding.line}: {finding.rule_id} "
                    f"suppressed ({finding.suppression_reason}): {finding.message}"
                )
            continue
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule_id} {finding.message}"
        )
    violations = len(findings) - suppressed_count
    summary = f"{violations} violation(s), {suppressed_count} suppressed"
    if files_checked is not None:
        summary += f" across {files_checked} file(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], files_checked: Optional[int] = None
) -> str:
    """The machine-readable report consumed by the CI gate."""
    violations = unsuppressed(findings)
    payload = {
        "tool": "repro-lint",
        "report_version": 1,
        "summary": {
            "files": files_checked,
            "violations": len(violations),
            "suppressed": len(findings) - len(violations),
        },
        "findings": [finding.to_json_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
