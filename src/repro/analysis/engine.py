"""repro-lint: the AST-based determinism & cache-safety lint engine.

Every pinned guarantee of this reproduction -- bit-identical
serial/process/resume sweeps, seed-stream compatibility, read-only
cache-served templates -- is an *invariant of the source*, not of any one
test run.  This engine walks Python files with per-rule AST visitors
(:mod:`repro.analysis.rules`) and reports violations of those invariants
at CI time, before a golden test has to catch them downstream.

Usage (also via ``python -m repro.analysis``)::

    findings = lint_paths(["src/"])
    print(render_text(findings))

Suppression pragma grammar
--------------------------

A finding is suppressed by a pragma **with a reason** on the same line or
on a standalone comment line directly above::

    value = datetime.datetime.now()  # repro-lint: allow[DET001] provenance stamp

    # repro-lint: allow[HOT001] golden reference path, pinned bit-identical
    for cycle in range(num_cycles):
        ...

A malformed pragma, an unknown rule id, or an empty reason is itself a
finding (``LINT001``) and cannot be suppressed: the suppression inventory
must stay auditable.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "LintModule",
    "ModuleRecord",
    "Rule",
    "collect_pragmas",
    "lint_module",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "render_json",
    "render_text",
]

#: Rule id of the engine's own findings: malformed/unknown/reason-less
#: pragmas and unparseable files.  Never suppressible.
META_RULE_ID = "LINT001"

_PRAGMA_MARKER = "repro-lint"
_PRAGMA_RE = re.compile(
    r"^#\s*repro-lint:\s*allow\[([A-Za-z0-9_-]+)\]\s*(.*?)\s*$"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, suppressed or not."""

    rule_id: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: Optional[str] = None
    #: True when the suppression came from the committed baseline file
    #: rather than an in-source pragma.
    baselined: bool = False

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-able representation (the ``--format=json`` entry shape)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
            "baselined": self.baselined,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_json_dict` (the cache deserializer)."""
        return cls(
            rule_id=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            suppressed=bool(data["suppressed"]),
            suppression_reason=(
                None
                if data.get("suppression_reason") is None
                else str(data["suppression_reason"])
            ),
            baselined=bool(data.get("baselined", False)),
        )


@dataclasses.dataclass
class LintModule:
    """One parsed module handed to the rules.

    ``logical_path`` is the path rules scope on (and findings report);
    for fixture snippets in tests it need not exist on disk.
    ``module_key`` is the path relative to the ``repro`` package root
    (e.g. ``"pipeline/backends.py"``), or ``""`` when the file is not
    under a ``repro`` directory -- rules that scope to repo modules
    (hot paths, pipeline-only) match on it.
    """

    logical_path: str
    source: str
    tree: ast.Module
    module_key: str

    @classmethod
    def from_source(cls, source: str, logical_path: str) -> "LintModule":
        """Parse ``source`` (raises :class:`SyntaxError` on bad input)."""
        tree = ast.parse(source, filename=logical_path)
        return cls(
            logical_path=logical_path,
            source=source,
            tree=tree,
            module_key=module_key_for(logical_path),
        )


def module_key_for(logical_path: str) -> str:
    """The path of a file relative to its ``repro`` package directory."""
    parts = PurePosixPath(str(logical_path).replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return ""


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`,
    returning ``(line, message)`` pairs; the engine attaches the rule id,
    the path and the suppression state.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, module: LintModule) -> bool:
        """Whether this rule inspects ``module`` at all (default: yes)."""
        return True

    def check(self, module: LintModule) -> List[Tuple[int, str]]:
        """Violations in ``module`` as ``(line, message)`` pairs."""
        raise NotImplementedError


# -- pragma collection -----------------------------------------------------------


def collect_pragmas(
    source: str, known_rule_ids: Iterable[str]
) -> Tuple[Dict[Tuple[int, str], str], List[Finding]]:
    """Parse every suppression pragma out of ``source``.

    Returns ``(pragmas, meta_findings)``: ``pragmas`` maps
    ``(line, rule_id)`` to the suppression reason (an inline pragma
    covers its own line, a standalone comment line covers the next
    line); ``meta_findings`` are the ``LINT001`` findings for malformed
    pragmas, unknown rule ids and missing reasons (path left empty --
    the engine fills it in).
    """
    known = set(known_rule_ids)
    pragmas: Dict[Tuple[int, str], str] = {}
    problems: List[Tuple[int, str]] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT or _PRAGMA_MARKER not in token.string:
            continue
        line = token.start[0]
        match = _PRAGMA_RE.match(token.string)
        if match is None:
            problems.append(
                (
                    line,
                    "malformed repro-lint pragma (expected "
                    "'# repro-lint: allow[RULE-ID] reason')",
                )
            )
            continue
        rule_id, reason = match.group(1), match.group(2)
        if rule_id not in known:
            problems.append((line, f"pragma names unknown rule {rule_id!r}"))
            continue
        if rule_id == META_RULE_ID:
            problems.append((line, f"{META_RULE_ID} findings cannot be suppressed"))
            continue
        if not reason:
            problems.append(
                (
                    line,
                    f"suppression of {rule_id} carries no reason; every "
                    "pragma must say why the violation is intentional",
                )
            )
            continue
        before_comment = lines[line - 1][: token.start[1]] if line <= len(lines) else ""
        target_line = line if before_comment.strip() else line + 1
        pragmas[(target_line, rule_id)] = reason
    findings = [
        Finding(rule_id=META_RULE_ID, path="", line=line, message=message)
        for line, message in problems
    ]
    return pragmas, findings


# -- linting ---------------------------------------------------------------------


def _default_rules() -> Sequence[Rule]:
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


def lint_module(
    module: LintModule, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run every rule over one parsed module."""
    active = list(rules) if rules is not None else list(_default_rules())
    pragmas, meta_findings = collect_pragmas(module.source, _known_ids(active))
    findings = [
        dataclasses.replace(finding, path=module.logical_path)
        for finding in meta_findings
    ]
    for rule in active:
        if not rule.applies_to(module):
            continue
        for line, message in rule.check(module):
            reason = pragmas.get((line, rule.rule_id))
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    path=module.logical_path,
                    line=line,
                    message=message,
                    suppressed=reason is not None,
                    suppression_reason=reason,
                )
            )
    return sorted(findings, key=lambda f: (f.line, f.rule_id, f.message))


@dataclasses.dataclass
class ModuleRecord:
    """The per-module result of the module pass (what the cache persists).

    ``summary`` is the serializable project digest
    (:class:`repro.analysis.project.ModuleSummary`), ``None`` when the
    file did not parse.
    """

    logical_path: str
    findings: List[Finding]
    pragmas: Dict[Tuple[int, str], str]
    summary: Optional[object]


def _known_ids(active: Sequence[Rule]) -> set:
    # Pragmas naming any *registered* rule stay valid when linting with a
    # subset (--rules SCHEMA001 must not misread a DET001 pragma as
    # unknown); only genuinely unregistered ids are LINT001 findings.
    return (
        {rule.rule_id for rule in active}
        | {rule.rule_id for rule in _default_rules()}
        | {META_RULE_ID}
    )


def _module_pass(
    source: str,
    logical_path: str,
    active: Sequence[Rule],
    known_ids: Iterable[str],
) -> ModuleRecord:
    """Parse + per-module rules + pragma table + project digest for one file."""
    from repro.analysis.project import summarize_module

    try:
        module = LintModule.from_source(source, logical_path)
    except SyntaxError as error:
        finding = Finding(
            rule_id=META_RULE_ID,
            path=logical_path,
            line=error.lineno or 1,
            message=f"file does not parse: {error.msg}",
        )
        return ModuleRecord(logical_path, [finding], {}, None)
    pragmas, meta_findings = collect_pragmas(module.source, known_ids)
    findings = [
        dataclasses.replace(finding, path=logical_path)
        for finding in meta_findings
    ]
    for rule in active:
        if not rule.applies_to(module):
            continue
        for line, message in rule.check(module):
            reason = pragmas.get((line, rule.rule_id))
            findings.append(
                Finding(
                    rule_id=rule.rule_id,
                    path=logical_path,
                    line=line,
                    message=message,
                    suppressed=reason is not None,
                    suppression_reason=reason,
                )
            )
    return ModuleRecord(logical_path, findings, pragmas, summarize_module(module))


def _finish_project(
    records: Sequence[ModuleRecord], active: Sequence[Rule]
) -> List[Finding]:
    """Project rules + the DEAD001 stale-pragma audit over all records."""
    from repro.analysis.project import LintProject, ModuleSummary, ProjectRule
    from repro.analysis.rules_concurrency import StalePragmaRule

    per_path: Dict[str, List[Finding]] = {
        record.logical_path: list(record.findings) for record in records
    }
    by_path = {record.logical_path: record for record in records}

    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    if project_rules:
        summaries = []
        for record in records:
            if record.summary is None:
                continue
            summary = record.summary
            if isinstance(summary, dict):  # cache round-trip
                summary = ModuleSummary.from_json_dict(summary)
            summaries.append(summary)
        project = LintProject(summaries)
        for rule in project_rules:
            for path, line, message in rule.check_project(project):
                record = by_path.get(path)
                reason = (
                    record.pragmas.get((line, rule.rule_id))
                    if record is not None
                    else None
                )
                per_path.setdefault(path, []).append(
                    Finding(
                        rule_id=rule.rule_id,
                        path=path,
                        line=line,
                        message=message,
                        suppressed=reason is not None,
                        suppression_reason=reason,
                    )
                )

    active_ids = {rule.rule_id for rule in active}
    for audit_rule in (r for r in active if isinstance(r, StalePragmaRule)):
        for record in records:
            module_findings = per_path.get(record.logical_path, [])
            for line, message in audit_rule.audit(
                record.pragmas, module_findings, active_ids
            ):
                reason = record.pragmas.get((line, audit_rule.rule_id))
                module_findings.append(
                    Finding(
                        rule_id=audit_rule.rule_id,
                        path=record.logical_path,
                        line=line,
                        message=message,
                        suppressed=reason is not None,
                        suppression_reason=reason,
                    )
                )

    findings = [finding for path in sorted(per_path) for finding in per_path[path]]
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule_id, f.message))


def lint_sources(
    sources: Dict[str, str], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint several sources as one project (the multi-module fixture API).

    ``sources`` maps logical path -> source text; project rules see all
    of them through one shared :class:`~repro.analysis.project.LintProject`.
    """
    active = list(rules) if rules is not None else list(_default_rules())
    known = _known_ids(active)
    records = [
        _module_pass(source, logical_path, active, known)
        for logical_path, source in sources.items()
    ]
    return _finish_project(records, active)


def lint_source(
    source: str,
    logical_path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string (the fixture entry point used by the tests)."""
    return lint_sources({logical_path: source}, rules)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(path)
    return files


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[object] = None,
) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, files_checked)``.  A missing path raises
    :class:`FileNotFoundError` (a CI job must not silently lint nothing);
    an unparseable file becomes a ``LINT001`` finding.

    ``cache`` is an optional :class:`repro.analysis.cache.LintCache`: hits
    skip the parse + per-module rule pass for unchanged files entirely
    (project rules always re-run, over the cached summaries).
    """
    active = list(rules) if rules is not None else list(_default_rules())
    known = _known_ids(active)
    files = iter_python_files(paths)
    records: List[ModuleRecord] = []
    for path in files:
        record: Optional[ModuleRecord] = None
        if cache is not None:
            record = cache.lookup(path)  # type: ignore[attr-defined]
        if record is None:
            record = _module_pass(path.read_text(), str(path), active, known)
            if cache is not None:
                cache.store(path, record)  # type: ignore[attr-defined]
        records.append(record)
    return _finish_project(records, active), len(files)


# -- reporters -------------------------------------------------------------------


def unsuppressed(findings: Sequence[Finding]) -> List[Finding]:
    """The findings that actually fail a run."""
    return [finding for finding in findings if not finding.suppressed]


def render_text(
    findings: Sequence[Finding],
    files_checked: Optional[int] = None,
    show_suppressed: bool = False,
) -> str:
    """The human-readable report (one ``path:line: RULE-ID message`` per line)."""
    lines = []
    suppressed_count = 0
    for finding in findings:
        if finding.suppressed:
            suppressed_count += 1
            if show_suppressed:
                lines.append(
                    f"{finding.path}:{finding.line}: {finding.rule_id} "
                    f"suppressed ({finding.suppression_reason}): {finding.message}"
                )
            continue
        lines.append(
            f"{finding.path}:{finding.line}: {finding.rule_id} {finding.message}"
        )
    violations = len(findings) - suppressed_count
    summary = f"{violations} violation(s), {suppressed_count} suppressed"
    if files_checked is not None:
        summary += f" across {files_checked} file(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], files_checked: Optional[int] = None
) -> str:
    """The machine-readable report consumed by the CI gate."""
    violations = unsuppressed(findings)
    payload = {
        "tool": "repro-lint",
        "report_version": 2,
        "summary": {
            "files": files_checked,
            "violations": len(violations),
            "suppressed": len(findings) - len(violations),
        },
        "findings": [finding.to_json_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
