"""The committed lint baseline: known findings, each with a justification.

New project-wide rules land against a decade of code; flooding every
legacy call site with suppression pragmas would bury the signal.  The
baseline is the alternative: a committed ``analysis/baseline.json``
listing the accepted findings, each entry carrying a *written
justification* (an empty one is a ``LINT001`` violation, exactly like a
reason-less pragma).

The contract keeps the baseline honest in both directions:

* a finding matching an entry is reported ``suppressed`` (and
  ``baselined``), consuming the entry -- one entry excuses one finding;
* an entry no finding matches anymore is *expired* and becomes a
  ``DEAD001`` violation at the baseline file, mirroring stale pragmas;
* a malformed entry (missing keys, unknown rule, empty justification)
  is a ``LINT001`` violation and cannot be suppressed.

Matching is by ``(rule, path, message)`` -- line numbers drift with
unrelated edits, messages only change when the finding itself does.
``--update-baseline`` regenerates the file from the current findings,
carrying justifications over and leaving new entries' empty (so the
committer must write them before the gate passes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import dataclasses

from repro.analysis.engine import META_RULE_ID, Finding

__all__ = [
    "apply_baseline",
    "default_baseline_path",
    "load_baseline",
    "update_baseline",
]

#: Rule id stale (expired) baseline entries are reported under.
STALE_RULE_ID = "DEAD001"

_REQUIRED_KEYS = ("rule", "path", "message", "justification")


def default_baseline_path() -> Path:
    """The committed baseline next to this module (``analysis/baseline.json``)."""
    return Path(__file__).resolve().parent / "baseline.json"


def _canonical(path_str: str) -> str:
    """Absolute resolved form of a path, for entry<->finding matching.

    The baseline stores repo-relative paths; findings may carry absolute
    ones (the test suite lints ``str(SRC)``).  Both resolve to the same
    canonical string when run from the repo root.
    """
    try:
        return str(Path(path_str).resolve())
    except OSError:  # pragma: no cover
        return path_str


def _repo_relative(path_str: str) -> str:
    """The committable form of a finding path (relative to cwd if under it)."""
    try:
        resolved = Path(path_str).resolve()
        return resolved.relative_to(Path.cwd()).as_posix()
    except (OSError, ValueError):
        return path_str


def _known_rule_ids() -> set:
    from repro.analysis.rules import RULE_INDEX

    return set(RULE_INDEX) | {META_RULE_ID}


def load_baseline(
    path: Path,
) -> Tuple[List[Dict[str, object]], List[Finding]]:
    """Parse the baseline file into ``(entries, problems)``.

    ``problems`` are LINT001 findings for an unreadable file or malformed
    entries; well-formed entries are returned even when siblings are bad.
    """
    problems: List[Finding] = []
    location = str(path)

    def problem(message: str, line: int = 1) -> None:
        problems.append(
            Finding(rule_id=META_RULE_ID, path=location, line=line, message=message)
        )

    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        problem(f"baseline is unreadable: {error}")
        return [], problems
    raw_entries = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(raw_entries, list):
        problem("baseline must be an object with an 'entries' list")
        return [], problems

    known = _known_rule_ids()
    entries: List[Dict[str, object]] = []
    for index, entry in enumerate(raw_entries):
        label = f"baseline entry #{index}"
        if not isinstance(entry, dict):
            problem(f"{label} is not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in entry]
        if missing:
            problem(f"{label} is missing key(s): {', '.join(missing)}")
            continue
        rule_id = str(entry["rule"])
        if rule_id not in known:
            problem(f"{label} names unknown rule {rule_id!r}")
            continue
        if rule_id == META_RULE_ID:
            problem(f"{label}: {META_RULE_ID} findings cannot be baselined")
            continue
        if not str(entry["justification"]).strip():
            problem(
                f"{label} ({rule_id} at {entry['path']}) carries no "
                "justification; every baselined finding must say why it "
                "is accepted"
            )
            continue
        entries.append(entry)
    return entries, problems


def apply_baseline(
    findings: Sequence[Finding],
    path: Optional[Path],
    linted_paths: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Suppress findings matching baseline entries; report expired entries.

    Returns a new findings list where each entry-matched finding is
    marked ``suppressed``/``baselined`` (one entry consumes one finding),
    plus ``LINT001`` findings for malformed entries and ``DEAD001``
    findings for entries nothing matches anymore.  ``path=None`` or a
    missing file is a no-op (no baseline in play).

    ``linted_paths`` scopes the expiry check: an entry whose ``path`` was
    not linted this run is out of scope -- neither consumed nor expired
    (linting one file must not declare the rest of the baseline stale).
    ``None`` means every entry is in scope.
    """
    if path is None or not path.exists():
        return list(findings)
    entries, problems = load_baseline(path)
    scope = (
        None
        if linted_paths is None
        else {_canonical(item) for item in linted_paths}
    )

    pool: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    for entry in entries:
        entry_path = _canonical(str(entry["path"]))
        if scope is not None and entry_path not in scope:
            continue
        key = (str(entry["rule"]), entry_path, str(entry["message"]))
        pool.setdefault(key, []).append(entry)

    result: List[Finding] = []
    for finding in findings:
        key = (finding.rule_id, _canonical(finding.path), finding.message)
        stack = pool.get(key)
        if finding.suppressed or not stack:
            result.append(finding)
            continue
        entry = stack.pop(0)
        result.append(
            dataclasses.replace(
                finding,
                suppressed=True,
                baselined=True,
                suppression_reason=f"baseline: {entry['justification']}",
            )
        )

    for stack in pool.values():
        for entry in stack:
            result.append(
                Finding(
                    rule_id=STALE_RULE_ID,
                    path=str(path),
                    line=int(entry.get("line", 1) or 1),  # type: ignore[arg-type]
                    message=(
                        f"expired baseline entry: {entry['rule']} at "
                        f"{entry['path']} ({str(entry['message'])[:80]!r}) "
                        "matches no current finding; remove it"
                    ),
                )
            )
    result.extend(problems)
    return sorted(result, key=lambda f: (f.path, f.line, f.rule_id, f.message))


def update_baseline(
    findings: Sequence[Finding], path: Path
) -> Tuple[int, int]:
    """Rewrite the baseline from the current unsuppressed findings.

    Justifications of entries still matching a finding are carried over;
    new entries get an empty justification the committer must fill in
    (the gate treats an empty one as LINT001).  Returns
    ``(total_entries, entries_needing_justification)``.
    """
    carried: Dict[Tuple[str, str, str], List[str]] = {}
    if path.exists():
        old_entries, _ = load_baseline(path)
        for entry in old_entries:
            key = (
                str(entry["rule"]),
                _canonical(str(entry["path"])),
                str(entry["message"]),
            )
            carried.setdefault(key, []).append(str(entry["justification"]))

    entries: List[Dict[str, object]] = []
    missing = 0
    for finding in findings:
        if finding.suppressed or finding.rule_id == META_RULE_ID:
            continue
        key = (finding.rule_id, _canonical(finding.path), finding.message)
        stack = carried.get(key)
        justification = stack.pop(0) if stack else ""
        if not justification:
            missing += 1
        entries.append(
            {
                "rule": finding.rule_id,
                "path": _repo_relative(finding.path),
                "line": finding.line,
                "message": finding.message,
                "justification": justification,
            }
        )
    entries.sort(key=lambda e: (e["path"], e["line"], e["rule"]))  # type: ignore[arg-type,return-value]
    payload = {"version": 1, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries), missing
