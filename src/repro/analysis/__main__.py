"""``python -m repro.analysis`` -- the repro-lint command line.

Check-only by default (there is deliberately no ``--fix``: every
violation is either a real bug or needs a reasoned pragma).  Exit codes:
``0`` clean, ``1`` unsuppressed findings, ``2`` usage error.

The committed baseline (``src/repro/analysis/baseline.json``) is applied
automatically when it exists; ``--no-baseline`` shows everything raw and
``--update-baseline`` regenerates the file from the current findings
(new entries get an empty justification the committer must write).
``--cache-dir`` enables the incremental per-file result cache;
``--sarif``/``--format=sarif`` emit SARIF 2.1.0 for code scanning.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    apply_baseline,
    default_baseline_path,
    update_baseline,
)
from repro.analysis.cache import LintCache, rules_signature
from repro.analysis.engine import (
    Rule,
    iter_python_files,
    lint_paths,
    render_json,
    render_text,
    unsuppressed,
)
from repro.analysis.rules import ALL_RULES, RULE_INDEX
from repro.analysis.sarif import render_sarif

USAGE_EXIT = 2


def _select_rules(names: Optional[str]) -> List[Rule]:
    if not names:
        return list(ALL_RULES)
    selected: List[Rule] = []
    for name in names.split(","):
        name = name.strip()
        if not name:
            continue
        rule = RULE_INDEX.get(name)
        if rule is None:
            known = ", ".join(sorted(RULE_INDEX))
            raise SystemExit(
                f"repro-lint: unknown rule {name!r} (known: {known})"
            )
        selected.append(rule)
    return selected


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: project-wide determinism, cache-safety and "
            "concurrency checks over this repository's pinned invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule inventory and exit",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file to apply (default: the committed "
            "src/repro/analysis/baseline.json when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding raw",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="directory for the incremental per-file result cache",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_list_rules())
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: no paths given", file=sys.stderr)
        return USAGE_EXIT
    if options.no_baseline and (options.baseline or options.update_baseline):
        print(
            "repro-lint: --no-baseline conflicts with "
            "--baseline/--update-baseline",
            file=sys.stderr,
        )
        return USAGE_EXIT
    try:
        rules = _select_rules(options.rules)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return USAGE_EXIT

    cache: Optional[LintCache] = None
    if options.cache_dir:
        cache = LintCache(Path(options.cache_dir), rules_signature(rules))

    started = time.perf_counter()
    try:
        findings, files_checked = lint_paths(options.paths, rules, cache=cache)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return USAGE_EXIT
    elapsed = time.perf_counter() - started

    baseline_path: Optional[Path] = None
    if not options.no_baseline:
        baseline_path = (
            Path(options.baseline) if options.baseline else default_baseline_path()
        )

    if options.update_baseline:
        target = baseline_path or default_baseline_path()
        total, missing = update_baseline(findings, target)
        print(
            f"repro-lint: wrote {total} baseline entr{'y' if total == 1 else 'ies'}"
            f" to {target}"
            + (f" ({missing} need a justification)" if missing else "")
        )
        return 0

    linted = [str(path) for path in iter_python_files(options.paths)]
    findings = apply_baseline(findings, baseline_path, linted_paths=linted)

    if options.sarif:
        Path(options.sarif).write_text(render_sarif(findings, rules) + "\n")
    if cache is not None:
        print(
            f"repro-lint: cache {cache.hits} hit(s), {cache.misses} miss(es), "
            f"{elapsed:.3f}s",
            file=sys.stderr,
        )
    if options.format == "json":
        print(render_json(findings, files_checked))
    elif options.format == "sarif":
        print(render_sarif(findings, rules))
    else:
        print(
            render_text(
                findings,
                files_checked,
                show_suppressed=options.show_suppressed,
            )
        )
    return 1 if unsuppressed(findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
