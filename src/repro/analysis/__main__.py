"""``python -m repro.analysis`` -- the repro-lint command line.

Check-only by default (there is deliberately no ``--fix``: every
violation is either a real bug or needs a reasoned pragma).  Exit codes:
``0`` clean, ``1`` unsuppressed findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    Rule,
    lint_paths,
    render_json,
    render_text,
    unsuppressed,
)
from repro.analysis.rules import ALL_RULES, RULE_INDEX

USAGE_EXIT = 2


def _select_rules(names: Optional[str]) -> List[Rule]:
    if not names:
        return list(ALL_RULES)
    selected: List[Rule] = []
    for name in names.split(","):
        name = name.strip()
        if not name:
            continue
        rule = RULE_INDEX.get(name)
        if rule is None:
            known = ", ".join(sorted(RULE_INDEX))
            raise SystemExit(
                f"repro-lint: unknown rule {name!r} (known: {known})"
            )
        selected.append(rule)
    return selected


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST-based determinism & cache-safety checks over "
            "this repository's pinned invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule inventory and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(_list_rules())
        return 0
    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: no paths given", file=sys.stderr)
        return USAGE_EXIT
    try:
        rules = _select_rules(options.rules)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return USAGE_EXIT
    try:
        findings, files_checked = lint_paths(options.paths, rules)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return USAGE_EXIT
    if options.format == "json":
        print(render_json(findings, files_checked))
    else:
        print(
            render_text(
                findings,
                files_checked,
                show_suppressed=options.show_suppressed,
            )
        )
    return 1 if unsuppressed(findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
