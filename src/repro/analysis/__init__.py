"""Area, overhead and robustness analysis (Sections V and VI of the paper),
plus repro-lint, the static determinism & cache-safety analyzer
(``python -m repro.analysis``)."""

from repro.analysis.area import AreaModel, AreaBreakdown
from repro.analysis.engine import (
    Finding,
    LintModule,
    Rule,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    unsuppressed,
)
from repro.analysis.rules import ALL_RULES, RULE_INDEX
from repro.analysis.overhead import (
    OverheadRow,
    OverheadTable,
    area_overhead_reduction,
    load_circuit_overhead_table,
)
from repro.analysis.attacks import (
    AttackOutcome,
    MaskingAttack,
    RemovalAttack,
    find_standalone_clusters,
)
from repro.analysis.robustness import (
    DetectionRobustnessAssessment,
    RobustnessAssessment,
    assess_detection_robustness,
    assess_robustness,
)
from repro.analysis.masking import (
    MaskingPoint,
    MaskingStudy,
    run_noise_masking_study,
    run_starvation_study,
)
from repro.analysis.operating_point import (
    CornerResult,
    OperatingPointStudy,
    run_operating_point_study,
)

__all__ = [
    "ALL_RULES",
    "RULE_INDEX",
    "Finding",
    "LintModule",
    "Rule",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "unsuppressed",
    "CornerResult",
    "OperatingPointStudy",
    "run_operating_point_study",
    "MaskingPoint",
    "MaskingStudy",
    "run_noise_masking_study",
    "run_starvation_study",
    "AreaModel",
    "AreaBreakdown",
    "OverheadRow",
    "OverheadTable",
    "area_overhead_reduction",
    "load_circuit_overhead_table",
    "RemovalAttack",
    "MaskingAttack",
    "AttackOutcome",
    "find_standalone_clusters",
    "RobustnessAssessment",
    "DetectionRobustnessAssessment",
    "assess_robustness",
    "assess_detection_robustness",
]
