"""Area-overhead arithmetic of Section V (Table II).

The baseline watermark needs ``N = P_load / (P_data + P_clock)`` load
registers to produce a detectable dynamic power ``P_load`` (every load
register both flips its data and toggles its clock buffer each enabled
cycle).  The proposed clock-modulation watermark keeps only the WGC
(12 registers), so the area-overhead reduction is::

    reduction = 1 - wgc_registers / (wgc_registers + N)

which is the "Area Overhead Increase" column of Table II read from the
baseline's point of view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.load_circuit import registers_for_load_power
from repro.power.library import (
    PAPER_CLOCK_BUFFER_POWER_W,
    PAPER_DATA_SWITCHING_POWER_W,
)

#: Load powers evaluated in Table II of the paper (watts).
TABLE_II_LOAD_POWERS_W: Sequence[float] = (0.25e-3, 0.5e-3, 1e-3, 1.5e-3, 5e-3, 10e-3)

#: Registers of the minimal watermark generation circuit.
WGC_REGISTERS = 12


def area_overhead_reduction(load_registers: int, wgc_registers: int = WGC_REGISTERS) -> float:
    """Fractional area reduction from removing the load circuit.

    Equals the fraction of the baseline watermark's registers that the
    proposed technique no longer needs.
    """
    if load_registers < 0 or wgc_registers <= 0:
        raise ValueError("register counts must be positive")
    total = load_registers + wgc_registers
    return load_registers / total


@dataclass(frozen=True)
class OverheadRow:
    """One row of the Table II reproduction."""

    load_power_w: float
    load_registers: int
    overhead_reduction: float

    def as_dict(self) -> dict:
        """Dictionary form used by experiment drivers and tests."""
        return {
            "load_power_w": self.load_power_w,
            "load_registers": self.load_registers,
            "overhead_reduction": self.overhead_reduction,
        }


@dataclass
class OverheadTable:
    """The Table II reproduction."""

    wgc_registers: int
    rows: List[OverheadRow] = field(default_factory=list)

    def row_for_power(self, load_power_w: float, tolerance: float = 1e-9) -> OverheadRow:
        """Look up the row for a given load power."""
        for row in self.rows:
            if abs(row.load_power_w - load_power_w) <= tolerance:
                return row
        raise KeyError(f"no row for load power {load_power_w} W")

    def to_text(self) -> str:
        """Render as a fixed-width text table."""
        header = f"{'Load power':>12} {'Load registers':>16} {'Area overhead reduction':>26}"
        lines = [
            f"Load circuit implementation costs (WGC = {self.wgc_registers} registers)",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            lines.append(
                f"{row.load_power_w * 1e3:>9.2f} mW {row.load_registers:>16d} "
                f"{row.overhead_reduction * 100:>24.1f}%"
            )
        return "\n".join(lines)

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def load_circuit_overhead_table(
    load_powers_w: Sequence[float] = TABLE_II_LOAD_POWERS_W,
    wgc_registers: int = WGC_REGISTERS,
    clock_buffer_power_w: float = PAPER_CLOCK_BUFFER_POWER_W,
    data_switching_power_w: float = PAPER_DATA_SWITCHING_POWER_W,
) -> OverheadTable:
    """Reproduce Table II for the given sweep of detectable load powers."""
    table = OverheadTable(wgc_registers=wgc_registers)
    for load_power in load_powers_w:
        registers = registers_for_load_power(
            load_power,
            clock_buffer_power_w=clock_buffer_power_w,
            data_switching_power_w=data_switching_power_w,
        )
        table.rows.append(
            OverheadRow(
                load_power_w=load_power,
                load_registers=registers,
                overhead_reduction=area_overhead_reduction(registers, wgc_registers),
            )
        )
    return table
