"""Reproduction of "Clock-Modulation Based Watermark for Protection of
Embedded Processors" (Kufel, Wilson, Hill, Al-Hashimi, Whatmough, Myers --
DATE 2014, DOI 10.7873/DATE.2014.053).

The package is organised as follows:

``repro.core``
    The paper's contribution: watermark sequence generators (LFSR /
    circular shift register), the watermark generation circuit, the
    baseline load-circuit watermark, the proposed clock-modulation
    watermark, and the embedding API.
``repro.rtl``
    RTL substrate: registers, integrated clock gates, clock trees,
    hierarchical modules, netlists and a cycle-level activity simulator.
``repro.power``
    Power modelling calibrated to the paper's 65 nm figures.
``repro.soc``
    Embedded-processor substrate: Thumb-like ISA, assembler, Cortex-M0-class
    core, bus, SRAM, caches, background-noise models, chip I/II assemblies.
``repro.measurement``
    Shunt / probe / oscilloscope measurement chain.
``repro.detection``
    Correlation Power Analysis detection, spread spectra and statistics.
``repro.analysis``
    Area, overhead and removal-attack robustness analysis.
``repro.experiments``
    One driver per paper table/figure (Fig. 2, 3, 5, 6; Tables I, II;
    Section VI robustness) -- thin shims over the scenario pipeline.
``repro.pipeline``
    The declarative scenario layer: frozen, serializable
    :class:`repro.core.spec.ScenarioSpec`, the pipeline runner
    (``ExperimentRunner.run`` / ``run_many``), typed result artifacts and
    the named-experiment registry behind ``python -m repro run``.

Quickstart
----------
>>> from repro.experiments import run_table2
>>> result = run_table2()
>>> round(result.headline_reduction, 2)
0.98

Or declaratively, via the scenario registry:

>>> from repro.pipeline import run_scenario
>>> round(run_scenario("table2").scalars["headline_reduction"], 2)
0.98
"""

from repro.core import (
    LFSR,
    BaselineWatermark,
    ClockModulationWatermark,
    WatermarkConfig,
    MeasurementConfig,
    DetectionConfig,
    ExperimentConfig,
    WatermarkGenerationCircuit,
)
from repro.detection import BatchCPADetector, CPADetector, SpreadSpectrum
from repro.measurement import AcquisitionCampaign
from repro.power import PowerEstimator
from repro.soc import build_chip_one, build_chip_two
from repro.pipeline import (
    DEFAULT_REGISTRY,
    ExperimentRunner,
    ScenarioResult,
    ScenarioSpec,
    SweepResult,
    run_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "LFSR",
    "BaselineWatermark",
    "ClockModulationWatermark",
    "WatermarkConfig",
    "MeasurementConfig",
    "DetectionConfig",
    "ExperimentConfig",
    "WatermarkGenerationCircuit",
    "CPADetector",
    "BatchCPADetector",
    "SpreadSpectrum",
    "AcquisitionCampaign",
    "PowerEstimator",
    "build_chip_one",
    "build_chip_two",
    "DEFAULT_REGISTRY",
    "ExperimentRunner",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepResult",
    "run_scenario",
    "__version__",
]
