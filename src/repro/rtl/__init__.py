"""Register-transfer-level circuit substrate.

This package provides the structural building blocks used by the watermark
architectures and by the SoC model: signals, sequential and clock-network
components, a hierarchical module system, a flattened netlist graph, and a
cycle-level simulator that records per-component switching activity.

The substrate is intentionally cycle-accurate rather than event-accurate:
Correlation Power Analysis (the paper's detection technique) consumes one
power value per clock cycle, so per-cycle switching-activity accounting is
the right level of abstraction for reproducing the paper's results.
"""

from repro.rtl.signals import Signal, Clock, LogicLevel
from repro.rtl.activity import ActivityRecord, ActivityTrace, ActivityAccumulator
from repro.rtl.components import (
    Component,
    Register,
    RegisterBank,
    ClockGate,
    ClockBuffer,
    CombinationalBlock,
    ShiftRegister,
)
from repro.rtl.clock_tree import ClockTree, ClockTreeLevel, build_clock_tree
from repro.rtl.netlist import Netlist, NetlistEdge
from repro.rtl.module import Module, Port, PortDirection
from repro.rtl.simulator import CycleSimulator, SimulationResult

__all__ = [
    "Signal",
    "Clock",
    "LogicLevel",
    "ActivityRecord",
    "ActivityTrace",
    "ActivityAccumulator",
    "Component",
    "Register",
    "RegisterBank",
    "ClockGate",
    "ClockBuffer",
    "CombinationalBlock",
    "ShiftRegister",
    "ClockTree",
    "ClockTreeLevel",
    "build_clock_tree",
    "Netlist",
    "NetlistEdge",
    "Module",
    "Port",
    "PortDirection",
    "CycleSimulator",
    "SimulationResult",
]
