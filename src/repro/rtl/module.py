"""Hierarchical module system.

A :class:`Module` groups components and child modules under a hierarchical
path (the way RTL designs are organised) and can be flattened into a
:class:`~repro.rtl.netlist.Netlist` for structural analysis.  Soft-IP
watermarking happens at exactly this level: the WGC is instantiated inside
some sub-module of the IP block and its output is wired into an existing
clock gate's enable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.rtl.components import Component
from repro.rtl.netlist import Netlist


class PortDirection(enum.Enum):
    """Direction of a module port."""

    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A named module port."""

    name: str
    direction: PortDirection
    width: int = 1

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("port width must be positive")


class Module:
    """A hierarchical design module.

    Parameters
    ----------
    name:
        Instance name of this module (not the full path).
    role:
        Default role assigned to components added to this module; used as
        ground truth by the attack analysis.
    """

    def __init__(self, name: str, role: str = "functional") -> None:
        if not name or "/" in name:
            raise ValueError(f"module name must be non-empty and not contain '/': {name!r}")
        self.name = name
        self.role = role
        self.ports: Dict[str, Port] = {}
        self.components: Dict[str, Component] = {}
        self.component_roles: Dict[str, str] = {}
        self.children: Dict[str, "Module"] = {}
        self.connections: List[Tuple[str, str, str]] = []

    # -- construction ----------------------------------------------------

    def add_port(self, name: str, direction: PortDirection, width: int = 1) -> Port:
        """Declare a port on this module."""
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r} on module {self.name!r}")
        port = Port(name=name, direction=direction, width=width)
        self.ports[name] = port
        return port

    def add_component(self, component: Component, role: Optional[str] = None) -> Component:
        """Add a leaf component to this module."""
        if component.name in self.components:
            raise ValueError(f"duplicate component {component.name!r} in module {self.name!r}")
        self.components[component.name] = component
        self.component_roles[component.name] = role or self.role
        return component

    def add_child(self, module: "Module") -> "Module":
        """Add a child module instance."""
        if module.name in self.children:
            raise ValueError(f"duplicate child module {module.name!r} in {self.name!r}")
        self.children[module.name] = module
        return module

    def connect(self, source: str, target: str, net: str = "") -> None:
        """Record a connection between two (possibly hierarchical) instance paths.

        Paths are relative to this module, e.g. ``"wgc/lfsr"`` or ``"icg0"``.
        Validation happens at flatten time, when the full hierarchy is known.
        """
        self.connections.append((source, target, net))

    # -- queries ---------------------------------------------------------

    def iter_components(self, prefix: str = "") -> Iterator[Tuple[str, Component, str]]:
        """Yield ``(path, component, role)`` for every leaf component below this module."""
        base = f"{prefix}{self.name}"
        for name, component in self.components.items():
            yield f"{base}/{name}", component, self.component_roles[name]
        for child in self.children.values():
            yield from child.iter_components(prefix=f"{base}/")

    @property
    def register_count(self) -> int:
        """Total flip-flop count of the module subtree."""
        return sum(c.register_count for _, c, _ in self.iter_components())

    @property
    def cell_count(self) -> int:
        """Total library cell count of the module subtree."""
        return sum(c.cell_count for _, c, _ in self.iter_components())

    def find(self, path: str) -> Component:
        """Look up a leaf component by path relative to this module."""
        parts = path.split("/")
        module: Module = self
        for part in parts[:-1]:
            if part not in module.children:
                raise KeyError(f"no child module {part!r} under {module.name!r}")
            module = module.children[part]
        leaf = parts[-1]
        if leaf not in module.components:
            raise KeyError(f"no component {leaf!r} in module {module.name!r}")
        return module.components[leaf]

    # -- flattening --------------------------------------------------------

    def flatten(self) -> Netlist:
        """Flatten the hierarchy into a netlist graph."""
        netlist = Netlist(self.name)
        for path, component, role in self.iter_components():
            # Store under the hierarchical path but keep the component object;
            # paths are unique by construction.
            netlist.graph.add_node(path, component=component, role=role, module=self.name)
        self._flatten_connections(netlist, prefix="")
        return netlist

    def _flatten_connections(self, netlist: Netlist, prefix: str) -> None:
        base = f"{prefix}{self.name}"
        for source, target, net in self.connections:
            src_path = f"{base}/{source}"
            dst_path = f"{base}/{target}"
            if src_path not in netlist.graph or dst_path not in netlist.graph:
                raise KeyError(
                    f"connection {source!r} -> {target!r} in module {self.name!r} "
                    "references unknown instances"
                )
            netlist.graph.add_edge(src_path, dst_path, net=net or f"{src_path}->{dst_path}")
        for child in self.children.values():
            child._flatten_connections(netlist, prefix=f"{base}/")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Module(name={self.name!r}, components={len(self.components)}, "
            f"children={len(self.children)})"
        )
