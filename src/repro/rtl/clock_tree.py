"""Clock-tree construction and activity model.

The paper's core argument is that the clock distribution network dominates
dynamic power (up to ~50% of total dynamic power, Section II), so modulating
clock gates with the watermark sequence produces a strong power pattern at
essentially no area cost.  This module models that network: given a number
of clock sinks (register clock pins), it builds a balanced buffer tree with
a bounded fanout per buffer and reports how many clock-net nodes toggle per
cycle for a given gating state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.activity import ActivityRecord
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE, ClockBuffer


@dataclass
class ClockTreeLevel:
    """One level of the buffer tree (level 0 drives the sinks directly)."""

    index: int
    buffers: List[ClockBuffer] = field(default_factory=list)

    @property
    def buffer_count(self) -> int:
        return len(self.buffers)


class ClockTree:
    """A balanced clock buffer tree for ``num_sinks`` register clock pins.

    Parameters
    ----------
    name:
        Instance name of the tree (usually the clock domain name).
    num_sinks:
        Number of leaf clock pins (one per flip-flop).
    max_fanout:
        Maximum number of loads a single buffer drives.  Typical CTS values
        are 16-32; the default of 16 matches a conservative 65 nm flow.
    """

    def __init__(self, name: str, num_sinks: int, max_fanout: int = 16) -> None:
        if num_sinks <= 0:
            raise ValueError("clock tree needs at least one sink")
        if max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")
        self.name = name
        self.num_sinks = num_sinks
        self.max_fanout = max_fanout
        self.levels: List[ClockTreeLevel] = []
        self._build()

    def _build(self) -> None:
        loads = self.num_sinks
        level_index = 0
        while True:
            buffer_count = max(1, math.ceil(loads / self.max_fanout))
            level = ClockTreeLevel(index=level_index)
            for i in range(buffer_count):
                fanout = min(self.max_fanout, loads - i * self.max_fanout)
                level.buffers.append(
                    ClockBuffer(f"{self.name}/L{level_index}/buf{i}", fanout=max(1, fanout))
                )
            self.levels.append(level)
            if buffer_count == 1:
                break
            loads = buffer_count
            level_index += 1

    @property
    def buffer_count(self) -> int:
        """Total number of buffers in the tree."""
        return sum(level.buffer_count for level in self.levels)

    @property
    def depth(self) -> int:
        """Number of buffer levels between the root and the sinks."""
        return len(self.levels)

    def toggles_per_cycle(self, active_sinks: Optional[int] = None) -> int:
        """Clock-net transitions per cycle for ``active_sinks`` enabled sinks.

        The count includes both the buffer outputs and the sink clock pins.
        When only a fraction of sinks is active (some ICGs disabled), the
        corresponding share of leaf-level buffers is assumed gated while the
        upper levels keep toggling (they feed other branches).
        """
        if active_sinks is None:
            active_sinks = self.num_sinks
        if not 0 <= active_sinks <= self.num_sinks:
            raise ValueError(
                f"active_sinks must be within [0, {self.num_sinks}], got {active_sinks}"
            )
        if active_sinks == 0:
            return 0
        toggling_nodes = active_sinks  # sink clock pins
        fraction = active_sinks / self.num_sinks
        for level in self.levels:
            if level.index == 0:
                toggling_nodes += max(1, int(round(level.buffer_count * fraction)))
            else:
                toggling_nodes += level.buffer_count
        return toggling_nodes * CLOCK_EDGES_PER_CYCLE

    def step(self, gated: bool = False, active_sinks: Optional[int] = None) -> ActivityRecord:
        """Activity of the tree for one cycle.

        ``gated=True`` models the watermark clock gate stopping the clock at
        the root of this (sub-)tree: no node below the gate toggles.
        """
        if gated:
            return ActivityRecord()
        return ActivityRecord(clock_toggles=self.toggles_per_cycle(active_sinks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClockTree(name={self.name!r}, sinks={self.num_sinks}, "
            f"buffers={self.buffer_count}, depth={self.depth})"
        )


def build_clock_tree(name: str, num_sinks: int, max_fanout: int = 16) -> ClockTree:
    """Convenience wrapper mirroring a clock-tree-synthesis (CTS) step."""
    return ClockTree(name=name, num_sinks=num_sinks, max_fanout=max_fanout)


def clock_power_fraction(
    clock_toggles: float, data_toggles: float, comb_toggles: float
) -> float:
    """Fraction of dynamic activity attributable to the clock network.

    The paper cites [14] for the observation that up to 50% of total dynamic
    power is consumed by the clock signal.  This helper lets tests and
    reports check that the SoC model lands in a realistic range.
    """
    total = clock_toggles + data_toggles + comb_toggles
    if total <= 0:
        return 0.0
    return clock_toggles / total
