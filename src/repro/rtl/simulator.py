"""Cycle-level activity simulator.

The simulator drives a set of *behavioural blocks* -- callables that, given
the cycle index, advance their internal state by one clock cycle and return
an :class:`ActivityRecord`.  Watermark circuits, the redundant register bank
and the SoC activity model all plug in through this interface, which keeps
the simulator agnostic of what it is simulating while still producing the
per-component activity traces the power estimator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.rtl.activity import ActivityAccumulator, ActivityRecord, ActivityTrace
from repro.rtl.signals import Clock

#: A behavioural block: advance one cycle, return the activity of that cycle.
StepFunction = Callable[[int], ActivityRecord]


@dataclass
class SimulationResult:
    """Outcome of a cycle-level simulation run."""

    clock: Clock
    num_cycles: int
    traces: Dict[str, ActivityTrace] = field(default_factory=dict)

    def trace(self, name: str) -> ActivityTrace:
        """Activity trace of one block."""
        if name not in self.traces:
            raise KeyError(
                f"no trace named {name!r}; available: {sorted(self.traces)}"
            )
        return self.traces[name]

    def combined_trace(self, names: Optional[List[str]] = None) -> ActivityTrace:
        """Element-wise sum of the selected traces (default: all of them)."""
        selected = names if names is not None else sorted(self.traces)
        if not selected:
            raise ValueError("no traces to combine")
        combined = self.traces[selected[0]]
        for name in selected[1:]:
            combined = combined.add(self.traces[name])
        combined.name = "combined"
        return combined

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock duration."""
        return self.num_cycles * self.clock.period_s


class CycleSimulator:
    """Runs registered behavioural blocks cycle by cycle.

    Example
    -------
    >>> from repro.rtl import CycleSimulator
    >>> from repro.rtl.signals import Clock
    >>> from repro.core import WatermarkGenerationCircuit
    >>> sim = CycleSimulator(Clock("clk", 10e6))
    >>> wgc = WatermarkGenerationCircuit.max_length(width=4)
    >>> sim.add_block("wgc", lambda cycle: wgc.step())
    >>> result = sim.run(32)
    >>> len(result.trace("wgc"))
    32
    """

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._blocks: Dict[str, StepFunction] = {}
        self._reset_hooks: List[Callable[[], None]] = []

    def add_block(self, name: str, step: StepFunction, reset: Optional[Callable[[], None]] = None) -> None:
        """Register a behavioural block under ``name``."""
        if name in self._blocks:
            raise ValueError(f"duplicate simulation block {name!r}")
        self._blocks[name] = step
        if reset is not None:
            self._reset_hooks.append(reset)

    @property
    def block_names(self) -> List[str]:
        """Names of all registered blocks."""
        return sorted(self._blocks)

    def reset(self) -> None:
        """Invoke every registered reset hook."""
        for hook in self._reset_hooks:
            hook()

    def run(self, num_cycles: int, reset_first: bool = False) -> SimulationResult:
        """Simulate ``num_cycles`` clock cycles and return the activity traces."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        if not self._blocks:
            raise ValueError("no simulation blocks registered")
        if reset_first:
            self.reset()
        accumulator = ActivityAccumulator()
        for cycle in range(num_cycles):
            for name, step in self._blocks.items():
                accumulator.record(name, step(cycle))
            accumulator.end_cycle()
        return SimulationResult(
            clock=self.clock,
            num_cycles=num_cycles,
            traces=accumulator.finalize(),
        )

    def run_periodic(
        self, period_cycles: int, num_cycles: int, reset_first: bool = True
    ) -> SimulationResult:
        """Simulate one period cycle-accurately and tile it to ``num_cycles``.

        This is the synthesis fast path for strictly periodic block sets
        (watermark circuits repeat exactly with the sequence period): the
        per-cycle Python loop runs ``period_cycles`` times regardless of the
        acquisition length, and the remaining cycles are produced by array
        tiling.  The caller asserts periodicity; ``run`` stays the golden
        reference and the equivalence is pinned in the test suite.  Blocks
        are reset first by default so the period starts from the power-on
        state, as a full :meth:`run` from reset would.
        """
        if period_cycles <= 0:
            raise ValueError("period_cycles must be positive")
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        result = self.run(min(period_cycles, num_cycles), reset_first=reset_first)
        if result.num_cycles >= num_cycles:
            return result
        return SimulationResult(
            clock=self.clock,
            num_cycles=num_cycles,
            traces={
                name: trace.tile(num_cycles) for name, trace in result.traces.items()
            },
        )
