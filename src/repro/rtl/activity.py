"""Per-cycle switching-activity records.

Dynamic power in CMOS is proportional to the number of node transitions per
cycle.  The simulator therefore reduces every component to three per-cycle
counters:

``clock_toggles``
    Transitions on clock nets (clock buffers, register clock pins).  An
    enabled clock toggles twice per cycle; a gated clock does not toggle.
``data_toggles``
    Register bit flips (Hamming distance between old and new contents).
``comb_toggles``
    Combinational/glue-logic transitions (enable logic, XOR feedback, etc.).

The power estimator (:mod:`repro.power`) converts these counters to energy
using per-cell coefficients from the synthetic 65 nm library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class ActivityRecord:
    """Switching activity of one component during one clock cycle."""

    clock_toggles: int = 0
    data_toggles: int = 0
    comb_toggles: int = 0

    def __add__(self, other: "ActivityRecord") -> "ActivityRecord":
        return ActivityRecord(
            clock_toggles=self.clock_toggles + other.clock_toggles,
            data_toggles=self.data_toggles + other.data_toggles,
            comb_toggles=self.comb_toggles + other.comb_toggles,
        )

    @property
    def total_toggles(self) -> int:
        """Total transitions across all three categories."""
        return self.clock_toggles + self.data_toggles + self.comb_toggles

    def is_idle(self) -> bool:
        """True when no node switched during the cycle."""
        return self.total_toggles == 0


ZERO_ACTIVITY = ActivityRecord()


class ActivityTrace:
    """Activity of one component (or one group) across many cycles.

    Stored as three parallel integer arrays to keep long traces (hundreds of
    thousands of cycles) cheap and to allow vectorised power computation.
    """

    def __init__(
        self,
        name: str,
        clock_toggles: Optional[np.ndarray] = None,
        data_toggles: Optional[np.ndarray] = None,
        comb_toggles: Optional[np.ndarray] = None,
    ) -> None:
        self.name = name
        self.clock_toggles = np.asarray(
            clock_toggles if clock_toggles is not None else [], dtype=np.int64
        )
        self.data_toggles = np.asarray(
            data_toggles if data_toggles is not None else [], dtype=np.int64
        )
        self.comb_toggles = np.asarray(
            comb_toggles if comb_toggles is not None else [], dtype=np.int64
        )
        self._validate()

    def _validate(self) -> None:
        lengths = {
            len(self.clock_toggles),
            len(self.data_toggles),
            len(self.comb_toggles),
        }
        if len(lengths) != 1:
            raise ValueError(
                f"activity arrays of trace {self.name!r} have mismatched lengths: "
                f"{sorted(lengths)}"
            )

    @classmethod
    def from_records(cls, name: str, records: Iterable[ActivityRecord]) -> "ActivityTrace":
        """Build a trace from an iterable of per-cycle records."""
        records = list(records)
        return cls(
            name=name,
            clock_toggles=np.array([r.clock_toggles for r in records], dtype=np.int64),
            data_toggles=np.array([r.data_toggles for r in records], dtype=np.int64),
            comb_toggles=np.array([r.comb_toggles for r in records], dtype=np.int64),
        )

    @classmethod
    def zeros(cls, name: str, num_cycles: int) -> "ActivityTrace":
        """An all-idle trace of ``num_cycles`` cycles."""
        z = np.zeros(num_cycles, dtype=np.int64)
        return cls(name=name, clock_toggles=z.copy(), data_toggles=z.copy(), comb_toggles=z.copy())

    def __len__(self) -> int:
        return len(self.clock_toggles)

    def __getitem__(self, cycle: int) -> ActivityRecord:
        return ActivityRecord(
            clock_toggles=int(self.clock_toggles[cycle]),
            data_toggles=int(self.data_toggles[cycle]),
            comb_toggles=int(self.comb_toggles[cycle]),
        )

    def __iter__(self) -> Iterator[ActivityRecord]:
        for i in range(len(self)):
            yield self[i]

    @property
    def total_toggles(self) -> np.ndarray:
        """Per-cycle total transition count."""
        return self.clock_toggles + self.data_toggles + self.comb_toggles

    def add(self, other: "ActivityTrace") -> "ActivityTrace":
        """Element-wise sum of two traces of equal length."""
        if len(self) != len(other):
            raise ValueError(
                f"cannot add traces of different lengths ({len(self)} vs {len(other)})"
            )
        return ActivityTrace(
            name=f"{self.name}+{other.name}",
            clock_toggles=self.clock_toggles + other.clock_toggles,
            data_toggles=self.data_toggles + other.data_toggles,
            comb_toggles=self.comb_toggles + other.comb_toggles,
        )

    def tile(self, num_cycles: int) -> "ActivityTrace":
        """Repeat the trace until it covers ``num_cycles`` cycles.

        Used to extend a representative workload window (e.g. one iteration
        of the Dhrystone-like loop) to the full acquisition length.
        """
        if len(self) == 0:
            raise ValueError("cannot tile an empty trace")
        reps = int(np.ceil(num_cycles / len(self)))
        return ActivityTrace(
            name=self.name,
            clock_toggles=np.tile(self.clock_toggles, reps)[:num_cycles],
            data_toggles=np.tile(self.data_toggles, reps)[:num_cycles],
            comb_toggles=np.tile(self.comb_toggles, reps)[:num_cycles],
        )

    def slice(self, start: int, stop: int) -> "ActivityTrace":
        """Return the sub-trace covering cycles ``[start, stop)``."""
        return ActivityTrace(
            name=self.name,
            clock_toggles=self.clock_toggles[start:stop],
            data_toggles=self.data_toggles[start:stop],
            comb_toggles=self.comb_toggles[start:stop],
        )

    def mean_record(self) -> ActivityRecord:
        """Average activity per cycle, rounded to integers (for reporting)."""
        if len(self) == 0:
            return ZERO_ACTIVITY
        return ActivityRecord(
            clock_toggles=int(round(float(np.mean(self.clock_toggles)))),
            data_toggles=int(round(float(np.mean(self.data_toggles)))),
            comb_toggles=int(round(float(np.mean(self.comb_toggles)))),
        )


class ActivityAccumulator:
    """Incremental builder of per-component activity traces.

    The cycle simulator appends one :class:`ActivityRecord` per component per
    cycle; :meth:`finalize` converts the accumulated lists to
    :class:`ActivityTrace` objects.
    """

    def __init__(self) -> None:
        self._records: Dict[str, List[ActivityRecord]] = {}
        self._num_cycles = 0

    @property
    def num_cycles(self) -> int:
        """Number of cycles recorded so far."""
        return self._num_cycles

    def record(self, component_name: str, activity: ActivityRecord) -> None:
        """Record ``activity`` for ``component_name`` in the current cycle.

        A component that first reports after some cycles have already
        elapsed is back-filled with idle records so its trace stays aligned
        with the global cycle count.
        """
        records = self._records.setdefault(component_name, [])
        while len(records) < self._num_cycles:
            records.append(ZERO_ACTIVITY)
        records.append(activity)

    def end_cycle(self) -> None:
        """Close the current cycle, padding components that did not report."""
        self._num_cycles += 1
        for name, records in self._records.items():
            while len(records) < self._num_cycles:
                records.append(ZERO_ACTIVITY)

    def finalize(self) -> Dict[str, ActivityTrace]:
        """Return the accumulated traces keyed by component name."""
        return {
            name: ActivityTrace.from_records(name, records)
            for name, records in self._records.items()
        }

    def component_names(self) -> List[str]:
        """Names of all components that reported at least once."""
        return sorted(self._records)
