"""Sequential, clock-network and combinational components.

Every component exposes two things:

* a structural description (cell type, register count, area contribution)
  used by the netlist/area analysis, and
* a per-cycle behavioural ``step`` that returns an :class:`ActivityRecord`
  describing how many nodes toggled during that cycle.

The clock-power model follows Section II of the paper: when a register's
clock is *enabled*, its internal clock buffer toggles twice per cycle
(rising and falling edge) regardless of whether the stored data changes;
when the clock is gated off, the clock pin does not toggle and no dynamic
power is consumed.  Data toggles are counted as Hamming distance between
the old and the new register contents.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.rtl.activity import ActivityRecord, ZERO_ACTIVITY
from repro.rtl.signals import hamming_distance, hamming_weight

#: Clock-net transitions per cycle when the clock is propagated.
CLOCK_EDGES_PER_CYCLE = 2


class Component(abc.ABC):
    """Base class for all structural components.

    Parameters
    ----------
    name:
        Hierarchical instance name, unique within a netlist.
    cell_type:
        Library cell class used for power/area lookup
        (``"dff"``, ``"icg"``, ``"clk_buf"``, ``"comb"``).
    """

    def __init__(self, name: str, cell_type: str) -> None:
        if not name:
            raise ValueError("component name must be non-empty")
        self.name = name
        self.cell_type = cell_type

    @property
    def register_count(self) -> int:
        """Number of storage bits implemented by this component."""
        return 0

    @property
    def cell_count(self) -> int:
        """Number of library cells this component maps to."""
        return 1

    @abc.abstractmethod
    def reset(self) -> None:
        """Return the component to its power-on state."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Register(Component):
    """A ``width``-bit register word with a clock-enable.

    The register models a word of flip-flops sharing one local clock branch.
    ``step(clock_enabled, next_value)`` advances one cycle:

    * if the clock is enabled the clock pins of all ``width`` flip-flops
      toggle twice and the data toggles equal the Hamming distance between
      the current and next contents;
    * if the clock is gated the register retains its value and reports zero
      activity.
    """

    def __init__(self, name: str, width: int = 1, reset_value: int = 0) -> None:
        super().__init__(name, cell_type="dff")
        if width <= 0:
            raise ValueError("register width must be positive")
        self.width = width
        self.reset_value = reset_value & ((1 << width) - 1)
        self.value = self.reset_value

    @property
    def register_count(self) -> int:
        return self.width

    @property
    def cell_count(self) -> int:
        return self.width

    def reset(self) -> None:
        self.value = self.reset_value

    def step(self, clock_enabled: bool, next_value: Optional[int] = None) -> ActivityRecord:
        """Advance one clock cycle.

        Parameters
        ----------
        clock_enabled:
            Whether the (possibly gated) clock reaches this register word.
        next_value:
            Value captured at the clock edge.  ``None`` means "hold".
        """
        if not clock_enabled:
            return ZERO_ACTIVITY
        clock_toggles = CLOCK_EDGES_PER_CYCLE * self.width
        data_toggles = 0
        if next_value is not None:
            next_value &= (1 << self.width) - 1
            data_toggles = hamming_distance(self.value, next_value, self.width)
            self.value = next_value
        return ActivityRecord(clock_toggles=clock_toggles, data_toggles=data_toggles)


class ShiftRegister(Register):
    """A shift register used as the baseline watermark *load circuit*.

    The state-of-the-art power watermark (Fig. 1(a) of the paper) drives an
    ``N``-bit shift register initialised with the alternating ``1010...``
    pattern.  While the shift-enable is high every bit changes on every
    cycle, maximising dynamic power.
    """

    #: Alternating pattern that maximises per-shift Hamming distance.
    ALTERNATING_PATTERN = 0b10

    def __init__(self, name: str, width: int = 8, circular: bool = True) -> None:
        pattern = 0
        for i in range(width):
            if i % 2 == 1:
                pattern |= 1 << i
        super().__init__(name, width=width, reset_value=pattern)
        self.circular = circular

    def shift(self, enable: bool, serial_in: Optional[int] = None) -> ActivityRecord:
        """Shift by one position when ``enable`` is high.

        When the shift-enable is low the register's clock is assumed to be
        gated (as in the reference architecture, where the enable drives the
        shift-enable input) and no activity is produced.
        """
        if not enable:
            return ZERO_ACTIVITY
        if serial_in is None:
            serial_in = (self.value >> (self.width - 1)) & 1 if self.circular else 0
        next_value = ((self.value << 1) | (serial_in & 1)) & ((1 << self.width) - 1)
        return self.step(clock_enabled=True, next_value=next_value)


class ClockGate(Component):
    """An integrated clock-gating cell (ICG).

    The ICG propagates the input clock to its output branch when the enable
    is high.  The cell itself contributes a small amount of activity (its
    internal latch and the gated-clock root node) which is charged as
    combinational toggles; the activity of the *driven* registers is
    accounted for by the registers themselves.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name, cell_type="icg")
        self.enabled = False
        self._previous_enabled = False

    def reset(self) -> None:
        self.enabled = False
        self._previous_enabled = False

    def step(self, enable: bool) -> ActivityRecord:
        """Evaluate the gate for one cycle and return its own activity."""
        self._previous_enabled = self.enabled
        self.enabled = bool(enable)
        # The enable latch toggles when the enable changes; the gated clock
        # root toggles twice per cycle while enabled.
        comb = 1 if self.enabled != self._previous_enabled else 0
        clock = CLOCK_EDGES_PER_CYCLE if self.enabled else 0
        return ActivityRecord(clock_toggles=clock, comb_toggles=comb)

    def clock_out(self, enable: bool) -> bool:
        """Whether the downstream clock branch is active this cycle."""
        return bool(enable)


class ClockBuffer(Component):
    """A clock-tree buffer driving a sub-tree of sinks.

    Buffers toggle twice per cycle whenever their branch of the clock tree
    is active.  The number of sinks is retained so that clock-tree power can
    be reported per level.
    """

    def __init__(self, name: str, fanout: int = 1) -> None:
        super().__init__(name, cell_type="clk_buf")
        if fanout <= 0:
            raise ValueError("clock buffer fanout must be positive")
        self.fanout = fanout

    def reset(self) -> None:  # stateless
        return None

    def step(self, branch_active: bool) -> ActivityRecord:
        """Return the buffer's activity for one cycle."""
        if not branch_active:
            return ZERO_ACTIVITY
        return ActivityRecord(clock_toggles=CLOCK_EDGES_PER_CYCLE)


class CombinationalBlock(Component):
    """A lump of combinational logic with a signal-count and activity factor.

    Used for glue logic (enable gating, LFSR feedback, decoders) whose exact
    gate-level structure is irrelevant to the power signature but whose
    transition count is not.
    """

    def __init__(self, name: str, gate_count: int = 1, activity_factor: float = 0.2) -> None:
        super().__init__(name, cell_type="comb")
        if gate_count <= 0:
            raise ValueError("gate count must be positive")
        if not 0.0 <= activity_factor <= 1.0:
            raise ValueError("activity factor must be within [0, 1]")
        self.gate_count = gate_count
        self.activity_factor = activity_factor

    @property
    def cell_count(self) -> int:
        return self.gate_count

    def reset(self) -> None:  # stateless
        return None

    def step(self, active: bool = True, toggles: Optional[int] = None) -> ActivityRecord:
        """Return the block's activity for one cycle.

        ``toggles`` overrides the activity-factor estimate when the caller
        knows the exact transition count (e.g. XOR feedback of an LFSR).
        """
        if not active:
            return ZERO_ACTIVITY
        if toggles is None:
            toggles = int(round(self.gate_count * self.activity_factor))
        return ActivityRecord(comb_toggles=toggles)


class RegisterBank(Component):
    """A bank of clock-gated register words (the redundant logic of Fig. 4(a)).

    The paper's test-chip watermark contains 1,024 registers organised as 32
    words of 32 bits, each word clock-gated by one ICG whose enable is driven
    by the watermark bit.  The bank generalises that structure: ``num_words``
    words of ``word_width`` bits, each with its own :class:`ClockGate`.

    ``switching_registers`` selects how many registers toggle their *data*
    when clocked (Table I sweeps 0, 256, 512 and 1,024); the remaining
    registers only burn clock-buffer power.
    """

    def __init__(
        self,
        name: str,
        num_words: int = 32,
        word_width: int = 32,
        switching_registers: int = 0,
    ) -> None:
        super().__init__(name, cell_type="register_bank")
        if num_words <= 0 or word_width <= 0:
            raise ValueError("register bank dimensions must be positive")
        total = num_words * word_width
        if not 0 <= switching_registers <= total:
            raise ValueError(
                f"switching_registers must be within [0, {total}], got {switching_registers}"
            )
        self.num_words = num_words
        self.word_width = word_width
        self.switching_registers = switching_registers
        self.words: List[Register] = [
            Register(f"{name}/word{i}", width=word_width, reset_value=0)
            for i in range(num_words)
        ]
        self.clock_gates: List[ClockGate] = [
            ClockGate(f"{name}/icg{i}") for i in range(num_words)
        ]
        self._toggle_phase = 0

    @property
    def total_registers(self) -> int:
        """Total number of flip-flops in the bank."""
        return self.num_words * self.word_width

    @property
    def register_count(self) -> int:
        return self.total_registers

    @property
    def cell_count(self) -> int:
        return self.total_registers + self.num_words

    def reset(self) -> None:
        for word in self.words:
            word.reset()
        for gate in self.clock_gates:
            gate.reset()
        self._toggle_phase = 0

    def step(self, enable: bool) -> ActivityRecord:
        """Advance the bank one cycle with the watermark bit on the ICG enables.

        When ``enable`` is high every word's clock branch is active, so every
        register's clock buffer toggles twice; the first
        ``switching_registers`` registers additionally invert their contents
        (data toggles).  When ``enable`` is low the bank is completely idle.
        """
        total = ZERO_ACTIVITY
        remaining_switching = self.switching_registers
        for word, gate in zip(self.words, self.clock_gates):
            total = total + gate.step(enable)
            clock_on = gate.clock_out(enable)
            if not clock_on:
                continue
            switching_bits = min(remaining_switching, word.width)
            remaining_switching -= switching_bits
            if switching_bits > 0:
                mask = (1 << switching_bits) - 1
                next_value = word.value ^ mask
            else:
                next_value = word.value
            total = total + word.step(clock_enabled=True, next_value=next_value)
        self._toggle_phase ^= 1
        return total
