"""Flattened netlist graph.

The netlist is a directed graph whose nodes are component instances and
whose edges are named connections (nets).  It is the structure on which the
removal-attack analysis of Section VI operates: a stand-alone load-circuit
watermark forms a weakly-connected cluster that can be excised without
touching functional logic, whereas the clock-modulation watermark shares its
clock-gate path with the functional IP block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set

import networkx as nx

from repro.rtl.components import Component


@dataclass(frozen=True)
class NetlistEdge:
    """A directed connection between two component instances."""

    source: str
    target: str
    net: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.source} -> {self.target} [{self.net}]"


class Netlist:
    """A flattened design netlist.

    Nodes carry the :class:`Component` object plus metadata used by the
    analysis passes:

    ``role``
        ``"functional"``, ``"watermark"`` or ``"clock"`` -- the ground-truth
        label used to score attack precision/recall.
    ``module``
        The hierarchical module path the instance came from.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()

    # -- construction --------------------------------------------------

    def add_component(
        self,
        component: Component,
        role: str = "functional",
        module: str = "",
    ) -> None:
        """Add a component instance to the netlist."""
        if component.name in self.graph:
            raise ValueError(f"duplicate component name: {component.name!r}")
        if role not in ("functional", "watermark", "clock"):
            raise ValueError(f"unknown role {role!r}")
        self.graph.add_node(component.name, component=component, role=role, module=module)

    def connect(self, source: str, target: str, net: str = "") -> None:
        """Add a directed connection (``source`` drives ``target``)."""
        for node in (source, target):
            if node not in self.graph:
                raise KeyError(f"component {node!r} not present in netlist {self.name!r}")
        self.graph.add_edge(source, target, net=net or f"{source}->{target}")

    # -- queries --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self.graph

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def component(self, name: str) -> Component:
        """Return the component object stored under ``name``."""
        return self.graph.nodes[name]["component"]

    def role(self, name: str) -> str:
        """Return the ground-truth role of an instance."""
        return self.graph.nodes[name]["role"]

    def components(self, role: Optional[str] = None) -> List[Component]:
        """All components, optionally filtered by role."""
        result = []
        for name, data in self.graph.nodes(data=True):
            if role is None or data["role"] == role:
                result.append(data["component"])
        return result

    def component_names(self, role: Optional[str] = None) -> List[str]:
        """Instance names (graph keys), optionally filtered by role.

        For flattened hierarchies the instance name is the full
        hierarchical path, which may differ from the leaf component name.
        """
        return [
            name
            for name, data in self.graph.nodes(data=True)
            if role is None or data["role"] == role
        ]

    def edges(self) -> Iterator[NetlistEdge]:
        """Iterate over all connections."""
        for source, target, data in self.graph.edges(data=True):
            yield NetlistEdge(source=source, target=target, net=data.get("net", ""))

    def fan_in(self, name: str) -> List[str]:
        """Instances driving ``name``."""
        return sorted(self.graph.predecessors(name))

    def fan_out(self, name: str) -> List[str]:
        """Instances driven by ``name``."""
        return sorted(self.graph.successors(name))

    @property
    def total_registers(self) -> int:
        """Total number of flip-flops across all instances."""
        return sum(c.register_count for c in self.components())

    @property
    def total_cells(self) -> int:
        """Total number of library cells across all instances."""
        return sum(c.cell_count for c in self.components())

    def registers_by_role(self, role: str) -> int:
        """Flip-flop count restricted to one role."""
        return sum(c.register_count for c in self.components(role))

    # -- structural analysis --------------------------------------------

    def weakly_connected_clusters(self) -> List[Set[str]]:
        """Weakly-connected clusters of the netlist graph."""
        return [set(c) for c in nx.weakly_connected_components(self.graph)]

    def reachable_from(self, sources: Iterable[str]) -> Set[str]:
        """All instances reachable (forward) from the given sources."""
        reachable: Set[str] = set()
        for source in sources:
            if source not in self.graph:
                raise KeyError(f"component {source!r} not present in netlist")
            reachable |= nx.descendants(self.graph, source)
            reachable.add(source)
        return reachable

    def cone_of_influence(self, sinks: Iterable[str]) -> Set[str]:
        """All instances that can influence the given sinks (backward cone)."""
        cone: Set[str] = set()
        for sink in sinks:
            if sink not in self.graph:
                raise KeyError(f"component {sink!r} not present in netlist")
            cone |= nx.ancestors(self.graph, sink)
            cone.add(sink)
        return cone

    def remove_components(self, names: Iterable[str]) -> "Netlist":
        """Return a copy of the netlist with the given instances removed.

        This is the primitive a removal attack applies; the robustness
        analysis then checks how much functional logic lost its drivers.
        """
        names = set(names)
        missing = names - set(self.graph.nodes)
        if missing:
            raise KeyError(f"cannot remove unknown components: {sorted(missing)}")
        pruned = Netlist(f"{self.name}~removed")
        pruned.graph = self.graph.copy()
        pruned.graph.remove_nodes_from(names)
        return pruned

    def dangling_inputs(self) -> List[str]:
        """Sequential/functional instances that lost all their drivers.

        A register or clock gate with zero fan-in after an edit indicates a
        broken design -- the quantity used to show that removing the
        clock-modulation watermark impairs system functionality.
        """
        dangling = []
        for name, data in self.graph.nodes(data=True):
            component = data["component"]
            if component.cell_type in ("dff", "icg", "register_bank"):
                if self.graph.in_degree(name) == 0:
                    dangling.append(name)
        return sorted(dangling)

    def subgraph_stats(self, names: Iterable[str]) -> Dict[str, int]:
        """Cell/register counts of a candidate sub-circuit."""
        names = list(names)
        registers = sum(self.component(n).register_count for n in names)
        cells = sum(self.component(n).cell_count for n in names)
        return {"instances": len(names), "registers": registers, "cells": cells}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist(name={self.name!r}, instances={len(self)}, "
            f"edges={self.graph.number_of_edges()})"
        )
