"""Signals, clocks and logic levels for the RTL substrate.

A :class:`Signal` carries a scalar logic value between components and keeps
its previous value so that toggles (the quantity that costs dynamic power)
can be counted.  A :class:`Clock` describes the periodic signal that drives
sequential elements; the clock itself is never simulated edge by edge --
components know that an *enabled* clock toggles twice per cycle (rising and
falling edge), which is the fact the paper exploits (Section II).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class LogicLevel(enum.IntEnum):
    """Binary logic level of a signal."""

    LOW = 0
    HIGH = 1

    @classmethod
    def from_bool(cls, value: bool) -> "LogicLevel":
        """Convert a boolean to a logic level."""
        return cls.HIGH if value else cls.LOW

    def __invert__(self) -> "LogicLevel":
        return LogicLevel.LOW if self is LogicLevel.HIGH else LogicLevel.HIGH


class Signal:
    """A named scalar signal with toggle tracking.

    Parameters
    ----------
    name:
        Hierarchical name of the signal (``"wgc/wmark"``).
    value:
        Initial logic value.
    """

    __slots__ = ("name", "_value", "_previous", "toggle_count")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self._value = int(bool(value))
        self._previous = self._value
        self.toggle_count = 0

    @property
    def value(self) -> int:
        """Current logic value (0 or 1)."""
        return self._value

    @property
    def previous(self) -> int:
        """Value before the most recent :meth:`set`."""
        return self._previous

    def set(self, value: int) -> bool:
        """Drive the signal to ``value``.

        Returns ``True`` if the value changed (a toggle), ``False`` otherwise.
        """
        new = int(bool(value))
        self._previous = self._value
        toggled = new != self._value
        if toggled:
            self.toggle_count += 1
        self._value = new
        return toggled

    def toggled(self) -> bool:
        """Whether the last :meth:`set` changed the value."""
        return self._value != self._previous

    def reset(self, value: int = 0) -> None:
        """Reset value, previous value and toggle statistics."""
        self._value = int(bool(value))
        self._previous = self._value
        self.toggle_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal(name={self.name!r}, value={self._value})"


@dataclass(frozen=True)
class Clock:
    """Description of a clock domain.

    Attributes
    ----------
    name:
        Clock name, e.g. ``"clk_sys"``.
    frequency_hz:
        Nominal frequency.  The paper's test chips run at 10 MHz.
    duty_cycle:
        High-time fraction, kept for completeness (power models assume 0.5).
    """

    name: str
    frequency_hz: float
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {self.frequency_hz}")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError(f"duty cycle must be in (0, 1), got {self.duty_cycle}")

    @property
    def period_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    @property
    def edges_per_cycle(self) -> int:
        """Number of clock-net transitions per cycle (rising + falling)."""
        return 2

    def cycles_for_duration(self, duration_s: float) -> int:
        """Number of whole clock cycles that fit in ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return int(duration_s * self.frequency_hz)


@dataclass
class SignalBundle:
    """A named collection of signals, used for multi-bit buses.

    The bundle owns its signals; ``word`` packs them into an integer with
    bit 0 being ``signals[0]``.
    """

    name: str
    width: int
    signals: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("bundle width must be positive")
        if not self.signals:
            self.signals = [Signal(f"{self.name}[{i}]") for i in range(self.width)]
        if len(self.signals) != self.width:
            raise ValueError("number of signals does not match declared width")

    @property
    def word(self) -> int:
        """Pack the bundle into an integer (bit 0 = ``signals[0]``)."""
        value = 0
        for i, sig in enumerate(self.signals):
            value |= (sig.value & 1) << i
        return value

    def drive(self, value: int) -> int:
        """Drive all bits from an integer; returns the number of toggles."""
        toggles = 0
        for i, sig in enumerate(self.signals):
            if sig.set((value >> i) & 1):
                toggles += 1
        return toggles

    def reset(self, value: int = 0) -> None:
        """Reset every bit of the bundle."""
        for i, sig in enumerate(self.signals):
            sig.reset((value >> i) & 1)

    def __len__(self) -> int:
        return self.width


def hamming_distance(a: int, b: int, width: Optional[int] = None) -> int:
    """Number of differing bits between ``a`` and ``b``.

    This is the canonical switching-activity measure for a register word:
    the dynamic energy of a data update is proportional to the Hamming
    distance between the old and new contents.
    """
    diff = a ^ b
    if width is not None:
        diff &= (1 << width) - 1
    return bin(diff).count("1")


def hamming_weight(value: int, width: Optional[int] = None) -> int:
    """Number of set bits in ``value`` (optionally masked to ``width`` bits)."""
    if width is not None:
        value &= (1 << width) - 1
    return bin(value).count("1")
