"""Fig. 3: the watermark power signal is deeply embedded in total device power.

The figure stacks three traces: the power of the embedded system, the
(much smaller) watermark power signal, and their sum, the device total
power measured at the supply rail.  The reproduction quantifies "deeply
embedded" as the ratio between the watermark's modulation amplitude and the
total power's mean and variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ExperimentConfig
from repro.power.trace import PowerTrace


@dataclass
class Fig3Result:
    """The three stacked traces of Fig. 3 plus embedding metrics."""

    system_power: PowerTrace
    watermark_power: PowerTrace
    total_power: PowerTrace
    measured_total_power: np.ndarray

    @property
    def watermark_amplitude_w(self) -> float:
        """Peak-to-trough modulation amplitude of the watermark signal."""
        values = self.watermark_power.power_w
        return float(np.max(values) - np.min(values))

    @property
    def system_mean_power_w(self) -> float:
        """Mean power of the embedded system without the watermark."""
        return self.system_power.average_power_w

    @property
    def relative_amplitude(self) -> float:
        """Watermark amplitude as a fraction of the total mean power."""
        total_mean = self.total_power.average_power_w
        if total_mean == 0:
            return 0.0
        return self.watermark_amplitude_w / total_mean

    @property
    def deeply_embedded(self) -> bool:
        """Whether the watermark disappears in the measured total power.

        In the paper's figure the watermark signal is invisible in the
        device total power; here that means its modulation amplitude is
        smaller than the cycle-to-cycle variation of the *measured* total
        power (system activity plus acquisition noise), i.e. an analytical
        technique such as CPA is genuinely required to find it.
        """
        measured_variation = float(np.std(self.measured_total_power))
        return self.watermark_amplitude_w <= measured_variation

    def to_text(self) -> str:
        """Summary table of the three traces."""
        rows = [
            ("embedded system power", self.system_power),
            ("watermark power signal", self.watermark_power),
            ("device total power", self.total_power),
        ]
        lines = ["Fig. 3 reproduction: watermark embedded in total device power", ""]
        for label, trace in rows:
            lines.append(
                f"  {label:<26} mean = {trace.average_power_w * 1e3:7.3f} mW, "
                f"peak = {trace.peak_power_w * 1e3:7.3f} mW"
            )
        lines.append("")
        lines.append(
            f"  watermark modulation amplitude = {self.watermark_amplitude_w * 1e3:.3f} mW "
            f"({self.relative_amplitude * 100:.1f}% of total mean power)"
        )
        lines.append(
            f"  measured total power sigma = {float(np.std(self.measured_total_power)) * 1e3:.3f} mW"
        )
        lines.append(f"  deeply embedded (invisible without CPA): {self.deeply_embedded}")
        return "\n".join(lines)


def run_fig3(
    num_cycles: int = 4_096,
    config: Optional[ExperimentConfig] = None,
    chip_name: str = "chip1",
    seed: int = 7,
) -> Fig3Result:
    """Reproduce the Fig. 3 simulation on the chip I model.

    Thin shim over the scenario pipeline (chip → power → acquisition
    stages); the report and arrays are bit-identical to the pre-pipeline
    driver.
    """
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    config = config or ExperimentConfig.paper_defaults()
    spec = ScenarioSpec(
        kind="fig3",
        name="fig3",
        chip=chip_name,
        watermark=config.watermark,
        measurement=config.measurement,
        detection=config.detection,
        seed=seed,
        m0_window_cycles=min(num_cycles, 8_192),
        params={"num_cycles": num_cycles},
    )
    return run_scenario(spec).payload
