"""Fig. 2: functional simulation of the two watermark architectures.

The paper's Fig. 2 shows the WMARK sequence together with the switching
activity of (a) the state-of-the-art load-circuit watermark and (b) the
proposed clock-modulation watermark.  The key observation is that while
WMARK is high the clock-modulation scheme switches *more* nodes per cycle
per register than the load circuit (clock buffers toggle on both edges),
and while WMARK is low both schemes are idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.core.wgc import WatermarkGenerationCircuit
from repro.core.load_circuit import LoadCircuit
from repro.core.clock_modulation import ClockModulatedIPBlock


@dataclass
class Fig2Result:
    """Per-cycle waveforms of the functional simulation."""

    num_cycles: int
    wmark: np.ndarray
    baseline_toggles: np.ndarray
    clock_modulation_toggles: np.ndarray
    registers_compared: int

    @property
    def baseline_toggles_per_active_register(self) -> float:
        """Average toggles per register per WMARK-high cycle (baseline)."""
        return self._per_register(self.baseline_toggles)

    @property
    def clock_modulation_toggles_per_active_register(self) -> float:
        """Average toggles per register per WMARK-high cycle (proposed)."""
        return self._per_register(self.clock_modulation_toggles)

    def _per_register(self, toggles: np.ndarray) -> float:
        active = toggles[self.wmark.astype(bool)]
        if len(active) == 0:
            return 0.0
        return float(np.mean(active)) / self.registers_compared

    @property
    def idle_when_wmark_low(self) -> bool:
        """Both architectures must be idle while WMARK is 0."""
        low = ~self.wmark.astype(bool)
        return bool(
            np.all(self.baseline_toggles[low] == 0)
            and np.all(self.clock_modulation_toggles[low] == 0)
        )

    def to_text(self) -> str:
        """Render the waveforms as a small text chart."""
        lines = [
            "Fig. 2 reproduction: functional simulation (first 48 cycles shown)",
            "cycle:      " + "".join(str(i % 10) for i in range(min(48, self.num_cycles))),
            "WMARK:      " + "".join("1" if b else "0" for b in self.wmark[:48]),
            "load SR:    " + "".join("#" if t > 0 else "." for t in self.baseline_toggles[:48]),
            "clock mod.: " + "".join("#" if t > 0 else "." for t in self.clock_modulation_toggles[:48]),
            "",
            f"toggles per register per active cycle: "
            f"load circuit = {self.baseline_toggles_per_active_register:.2f}, "
            f"clock modulation = {self.clock_modulation_toggles_per_active_register:.2f}",
        ]
        return "\n".join(lines)


def run_fig2(
    num_cycles: int = 64,
    register_count: int = 8,
    lfsr_width: int = 4,
    seed: int = 0b1001,
) -> Fig2Result:
    """Reproduce the Fig. 2 functional simulation.

    Thin shim over the scenario pipeline: builds the ``fig2`` spec and
    executes it through :class:`repro.pipeline.ExperimentRunner` (the
    report and arrays are bit-identical to the pre-pipeline driver).
    """
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    spec = ScenarioSpec(
        kind="fig2",
        name="fig2",
        seed=seed,
        params={
            "num_cycles": num_cycles,
            "register_count": register_count,
            "lfsr_width": lfsr_width,
        },
    )
    return run_scenario(spec).payload


def _compute_fig2(
    num_cycles: int,
    register_count: int,
    lfsr_width: int,
    seed: int,
) -> Fig2Result:
    """The Fig. 2 functional simulation (pipeline stage body).

    Both architectures use the same small WGC (so the WMARK waveforms are
    identical) and a power-pattern producer of ``register_count`` registers
    (the paper's illustration uses an 8-bit load register).
    """
    if num_cycles <= 0:
        raise ValueError("num_cycles must be positive")
    baseline = BaselineWatermark(
        wgc=WatermarkGenerationCircuit.minimal(width=lfsr_width, seed=seed),
        load=LoadCircuit(num_registers=register_count, word_width=register_count),
    )
    clock_mod = ClockModulationWatermark(
        wgc=WatermarkGenerationCircuit.minimal(width=lfsr_width, seed=seed),
        modulated_block=ClockModulatedIPBlock(
            modulated_registers=register_count, num_clock_gates=1
        ),
    )

    wmark_bits = baseline.sequence(num_cycles)
    baseline_traces = baseline.activity_traces(num_cycles)
    clock_mod_traces = clock_mod.activity_traces(num_cycles)
    return Fig2Result(
        num_cycles=num_cycles,
        wmark=np.asarray(wmark_bits, dtype=np.int8),
        baseline_toggles=baseline_traces["load"].total_toggles,
        clock_modulation_toggles=clock_mod_traces["load"].total_toggles,
        registers_compared=register_count,
    )
