"""Experiment drivers reproducing every table and figure of the paper.

Each module provides a ``run_*`` function returning a result dataclass with
the raw numbers plus a ``to_text()``/``summary()`` renderer, so the same
code backs the benchmark harness, the examples and EXPERIMENTS.md.
"""

from repro.experiments.common import (
    build_watermark,
    build_chip,
    paper_expectations,
)
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig5 import Fig5Panel, Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.robustness_exp import RobustnessResult, run_robustness

__all__ = [
    "build_watermark",
    "build_chip",
    "paper_expectations",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "run_fig3",
    "Fig5Panel",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "RobustnessResult",
    "run_robustness",
]
