"""Table I: power consumption of the placed-and-routed load circuit.

The table sweeps how many of the 1,024 registers of the clock-modulated
redundant bank switch their data when the watermark enables their clocks
(0, 256, 512, 1,024) and reports the load circuit's dynamic, static and
total power plus its share of the total watermark dynamic power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.power.estimator import PowerEstimator
from repro.power.report import PowerReport, PowerReportRow

#: Switching-register counts evaluated by the paper's Table I.
TABLE_I_SWITCHING_REGISTERS: Sequence[int] = (0, 256, 512, 1024)


@dataclass
class Table1Row:
    """One Table I row: a load-circuit implementation and its power."""

    switching_registers: int
    dynamic_w: float
    static_w: float
    share_of_watermark_dynamic: float

    @property
    def total_w(self) -> float:
        """Dynamic plus static power."""
        return self.dynamic_w + self.static_w

    @property
    def implementation(self) -> str:
        """Row label mirroring the paper's wording."""
        if self.switching_registers == 0:
            return "Clock Buffers Modulation, No Data Switching"
        return f"Clock Buffers Modulation, {self.switching_registers} Switching Registers"


@dataclass
class Table1Result:
    """The Table I reproduction."""

    rows: List[Table1Row] = field(default_factory=list)
    wgc_dynamic_w: float = 0.0

    def row(self, switching_registers: int) -> Table1Row:
        """Look up the row for a switching-register count."""
        for row in self.rows:
            if row.switching_registers == switching_registers:
                return row
        raise KeyError(f"no row for {switching_registers} switching registers")

    def dynamic_power_monotonic(self) -> bool:
        """Dynamic power must grow with the number of switching registers."""
        dynamics = [row.dynamic_w for row in self.rows]
        return all(b > a for a, b in zip(dynamics, dynamics[1:]))

    def to_power_report(self) -> PowerReport:
        """Render as a :class:`PowerReport` (Table I layout)."""
        report = PowerReport(title="Table I: power consumption of placed and routed load circuit")
        for row in self.rows:
            report.add_row(
                PowerReportRow(
                    implementation=row.implementation,
                    dynamic_w=row.dynamic_w,
                    static_w=row.static_w,
                    share_of_watermark_dynamic=row.share_of_watermark_dynamic,
                )
            )
        return report

    def to_text(self) -> str:
        """Text rendering."""
        return self.to_power_report().to_text()


def run_table1(
    switching_register_counts: Sequence[int] = TABLE_I_SWITCHING_REGISTERS,
    estimator: Optional[PowerEstimator] = None,
    config: Optional[WatermarkConfig] = None,
) -> Table1Result:
    """Reproduce Table I with the activity-based power estimator.

    Thin shim over the scenario pipeline when the default (nominal)
    estimator is used; a custom ``estimator`` object cannot be expressed
    in a serializable spec, so that path computes directly.
    """
    if estimator is None:
        from repro.core.spec import ScenarioSpec
        from repro.pipeline.runner import run_scenario

        spec = ScenarioSpec(
            kind="table1",
            name="table1",
            watermark=config or WatermarkConfig(),
            params={"switching_register_counts": list(switching_register_counts)},
        )
        return run_scenario(spec).payload
    return _compute_table1(
        switching_register_counts=switching_register_counts,
        estimator=estimator,
        config=config,
    )


def _compute_table1(
    switching_register_counts: Sequence[int],
    estimator: Optional[PowerEstimator],
    config: Optional[WatermarkConfig],
) -> Table1Result:
    """The Table I computation (pipeline stage body)."""
    estimator = estimator or PowerEstimator.at_nominal()
    base_config = config or WatermarkConfig()
    result = Table1Result()

    for switching in switching_register_counts:
        row_config = WatermarkConfig(
            architecture=base_config.architecture,
            lfsr_width=base_config.lfsr_width,
            lfsr_seed=base_config.lfsr_seed,
            num_words=base_config.num_words,
            word_width=base_config.word_width,
            switching_registers=switching,
            load_registers=base_config.load_registers,
            use_test_chip_wgc=True,
        )
        watermark = ClockModulationWatermark.from_config(row_config)

        # Dynamic power of the load (the modulated bank) during enabled cycles,
        # which is what a signoff tool reports for the placed-and-routed macro.
        load_dynamic = watermark.average_active_load_power(estimator)

        # WGC dynamic power (it is clocked every cycle).
        periodic = watermark.periodic_activity()
        wgc_dynamic = estimator.dynamic_model.average_power("dff", periodic["wgc"])

        # Leakage of the bank (registers + clock gates + local buffers).
        bank_inventory = watermark.modulated_block.cell_inventory()
        static = estimator.leakage_of(bank_inventory, active_fraction=switching / 1024.0)

        share = load_dynamic / (load_dynamic + wgc_dynamic) if load_dynamic > 0 else 0.0
        result.rows.append(
            Table1Row(
                switching_registers=switching,
                dynamic_w=load_dynamic,
                static_w=static,
                share_of_watermark_dynamic=share,
            )
        )
        result.wgc_dynamic_w = wgc_dynamic
    return result
