"""Table II: load-circuit implementation costs versus required power.

For a sweep of "detectable load circuit dynamic power" targets, the table
gives the number of registers a baseline load circuit would need
(``N = P_load / (1.126 uW + 1.476 uW)``) and the area-overhead reduction
achieved by the proposed clock-modulation technique, which only keeps the
12-register WGC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.overhead import (
    OverheadTable,
    TABLE_II_LOAD_POWERS_W,
    WGC_REGISTERS,
    load_circuit_overhead_table,
)
from repro.power.estimator import PowerEstimator


@dataclass
class Table2Result:
    """The Table II reproduction plus the calibration cross-check."""

    table: OverheadTable
    per_register_clock_power_w: float
    per_register_data_power_w: float

    @property
    def headline_reduction(self) -> float:
        """The paper's headline figure: reduction at the 1.5 mW operating point."""
        return self.table.row_for_power(1.5e-3).overhead_reduction

    def reduction_monotonic(self) -> bool:
        """The reduction must grow with system size (required load power)."""
        reductions = [row.overhead_reduction for row in self.table]
        return all(b >= a for a, b in zip(reductions, reductions[1:]))

    def to_text(self) -> str:
        """Text rendering of the table plus the calibration figures."""
        lines = [
            self.table.to_text(),
            "",
            "Per-register powers used for sizing (from the power estimator):",
            f"  clock buffer:   {self.per_register_clock_power_w * 1e6:.3f} uW  (paper: 1.476 uW)",
            f"  data switching: {self.per_register_data_power_w * 1e6:.3f} uW  (paper: 1.126 uW)",
            "",
            f"Headline area-overhead reduction at 1.5 mW: {self.headline_reduction * 100:.1f}% (paper: 98%)",
        ]
        return "\n".join(lines)


def run_table2(
    load_powers_w: Sequence[float] = TABLE_II_LOAD_POWERS_W,
    wgc_registers: int = WGC_REGISTERS,
    estimator: Optional[PowerEstimator] = None,
) -> Table2Result:
    """Reproduce Table II.

    Thin shim over the scenario pipeline when the default (nominal)
    estimator is used; a custom ``estimator`` object cannot be expressed
    in a serializable spec, so that path computes directly.
    """
    if estimator is None:
        from repro.core.spec import ScenarioSpec
        from repro.pipeline.runner import run_scenario

        spec = ScenarioSpec(
            kind="table2",
            name="table2",
            params={
                "load_powers_w": list(load_powers_w),
                "wgc_registers": wgc_registers,
            },
        )
        return run_scenario(spec).payload
    return _compute_table2(
        load_powers_w=load_powers_w,
        wgc_registers=wgc_registers,
        estimator=estimator,
    )


def _compute_table2(
    load_powers_w: Sequence[float],
    wgc_registers: int,
    estimator: Optional[PowerEstimator],
) -> Table2Result:
    """The Table II computation (pipeline stage body).

    The per-register sizing coefficients are taken from the power
    estimator (rather than hard-coded), which cross-checks that the
    activity-based power model reproduces the paper's published
    per-register figures.
    """
    estimator = estimator or PowerEstimator.at_nominal()
    clock_power = estimator.per_register_clock_power()
    data_power = estimator.per_register_data_power()
    table = load_circuit_overhead_table(
        load_powers_w=load_powers_w,
        wgc_registers=wgc_registers,
        clock_buffer_power_w=clock_power,
        data_switching_power_w=data_power,
    )
    return Table2Result(
        table=table,
        per_register_clock_power_w=clock_power,
        per_register_data_power_w=data_power,
    )
