"""Shared helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.architectures import (
    BaselineWatermark,
    ClockModulationWatermark,
    WatermarkArchitecture,
)
from repro.core.config import ArchitectureKind, ExperimentConfig, WatermarkConfig
from repro.soc.chip import ChipModel
from repro.soc.registry import build_registered_chip


def build_watermark(config: Optional[WatermarkConfig] = None) -> WatermarkArchitecture:
    """Build the watermark architecture selected by ``config``."""
    config = config or WatermarkConfig()
    if config.architecture is ArchitectureKind.CLOCK_MODULATION:
        return ClockModulationWatermark.from_config(config)
    return BaselineWatermark.from_config(config)


def build_chip(
    chip_name: str,
    config: Optional[ExperimentConfig] = None,
    watermark: Optional[WatermarkArchitecture] = None,
    m0_window_cycles: int = 16_384,
) -> ChipModel:
    """Build a registered chip with the paper's watermark configuration.

    Chip names resolve through :mod:`repro.soc.registry` (canonical names
    plus declared aliases); unknown names raise a ``ValueError`` listing
    every valid spelling.
    """
    config = config or ExperimentConfig.paper_defaults()
    if watermark is None:
        watermark = build_watermark(config.watermark)
    return build_registered_chip(
        chip_name, watermark=watermark, m0_window_cycles=m0_window_cycles
    )


def paper_expectations() -> Dict[str, Dict]:
    """The published values our reproduction is compared against.

    Only the *shape* is expected to hold (see DESIGN.md); absolute values
    from the silicon measurements depend on the authors' testbed.
    """
    return {
        "table1": {
            "dynamic_power_mw": {0: 1.51, 256: 1.80, 512: 2.09, 1024: 2.66},
            "static_power_uw": {0: 0.404, 256: 0.407, 512: 0.407, 1024: 0.408},
            "share_of_watermark_dynamic": {0: 0.956, 256: 0.968, 512: 0.972, 1024: 0.98},
        },
        "table2": {
            "load_registers": {0.25e-3: 96, 0.5e-3: 192, 1e-3: 384, 1.5e-3: 576, 5e-3: 1921, 10e-3: 3843},
            "overhead_reduction": {0.25e-3: 0.889, 0.5e-3: 0.941, 1e-3: 0.969, 1.5e-3: 0.98, 5e-3: 0.994, 10e-3: 0.997},
        },
        "fig5": {
            "chip1_peak_rho_range": (0.010, 0.025),
            "chip2_peak_rho_range": (0.007, 0.020),
            "noise_floor_abs_max": 0.008,
        },
        "fig6": {
            "repetitions": 100,
            "detection_rate": 1.0,
        },
        "headline_area_reduction": 0.98,
    }
