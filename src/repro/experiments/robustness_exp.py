"""Section VI: robustness against removal attacks.

Not a numbered table in the paper, but the claim is explicit: the baseline
load-circuit watermark is a stand-alone block that a structural attacker
can locate and excise without touching the host design, while the
clock-modulation watermark is entangled with the host's clock-gating logic
so that removal impairs the system.  This experiment makes the comparison
quantitative on a structural SoC model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.attacks import RemovalAttack
from repro.analysis.robustness import RobustnessAssessment, assess_robustness
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.embedding import embed_baseline, embed_clock_modulation
from repro.soc.structure import build_soc_structure, clock_gate_paths


@dataclass
class RobustnessResult:
    """Robustness assessment of both architectures on the same host SoC."""

    baseline: RobustnessAssessment
    clock_modulation: RobustnessAssessment

    @property
    def baseline_removed_by_blind_attack(self) -> bool:
        """The paper's claim: the stand-alone load circuit is easily removed."""
        return self.baseline.blind_attack.watermark_fully_removed

    @property
    def clock_modulation_survives_blind_attack(self) -> bool:
        """The proposed watermark is not identifiable as a stand-alone block."""
        return self.clock_modulation.survives_blind_attack

    @property
    def clock_modulation_removal_breaks_system(self) -> bool:
        """Even an informed removal of the proposed watermark damages the host."""
        return self.clock_modulation.removal_breaks_system

    @property
    def baseline_removal_harmless(self) -> bool:
        """Removing the baseline watermark leaves the host design intact."""
        return not self.baseline.removal_breaks_system

    @property
    def improved_robustness_demonstrated(self) -> bool:
        """The overall Section VI claim."""
        return (
            self.baseline_removed_by_blind_attack
            and self.baseline_removal_harmless
            and self.clock_modulation_survives_blind_attack
            and self.clock_modulation_removal_breaks_system
        )

    def to_text(self) -> str:
        """Summary of both assessments."""
        lines = [
            "Section VI reproduction: robustness against removal attacks",
            "",
            self.baseline.summary(),
            "",
            self.clock_modulation.summary(),
            "",
            f"improved robustness demonstrated: {self.improved_robustness_demonstrated}",
        ]
        return "\n".join(lines)


def run_robustness(
    config: Optional[WatermarkConfig] = None,
    attack: Optional[RemovalAttack] = None,
    modulated_gates: int = 4,
) -> RobustnessResult:
    """Embed both watermark architectures in the structural SoC and attack them.

    Thin shim over the scenario pipeline when the default
    :class:`RemovalAttack` is used; a custom ``attack`` object cannot be
    expressed in a serializable spec, so that path computes directly.
    """
    if modulated_gates <= 0:
        raise ValueError("at least one clock gate must be modulated")
    if attack is None:
        from repro.core.spec import ScenarioSpec
        from repro.pipeline.runner import run_scenario

        spec = ScenarioSpec(
            kind="robustness",
            name="robustness",
            watermark=config or WatermarkConfig(),
            params={"modulated_gates": modulated_gates},
        )
        return run_scenario(spec).payload
    return _compute_robustness(
        config=config, attack=attack, modulated_gates=modulated_gates
    )


def _compute_robustness(
    config: Optional[WatermarkConfig],
    attack: Optional[RemovalAttack],
    modulated_gates: int,
) -> RobustnessResult:
    """The Section VI robustness computation (pipeline stage body)."""
    config = config or WatermarkConfig()
    attack = attack or RemovalAttack()

    baseline_host = build_soc_structure(name="soc_baseline")
    baseline_config = WatermarkConfig(
        architecture=ArchitectureKind.BASELINE_LOAD_CIRCUIT,
        lfsr_width=config.lfsr_width,
        lfsr_seed=config.lfsr_seed,
        load_registers=config.load_registers,
    )
    baseline_embedded = embed_baseline(baseline_host, baseline_config)
    baseline_assessment = assess_robustness(baseline_embedded, attack)

    clock_mod_host = build_soc_structure(name="soc_clockmod")
    gates = clock_gate_paths(clock_mod_host)[:modulated_gates]
    clock_mod_embedded = embed_clock_modulation(clock_mod_host, gates, config)
    clock_mod_assessment = assess_robustness(clock_mod_embedded, attack)

    return RobustnessResult(baseline=baseline_assessment, clock_modulation=clock_mod_assessment)
