"""Fig. 6: repeatability of detection over 100 measurements per chip.

The paper repeats the acquisition 100 times on each chip and shows the
correlation coefficients as box plots: the in-phase (peak) rotation's box
sits clearly above the out-of-phase boxes, and the watermark is detected in
every repetition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import ExperimentConfig
from repro.detection.statistics import BoxPlotStats, RepetitionStatistics


@dataclass
class Fig6ChipResult:
    """Repeated-measurement statistics of one chip."""

    chip_name: str
    statistics: RepetitionStatistics
    peak_box: BoxPlotStats
    off_peak_box: BoxPlotStats

    @property
    def detection_rate(self) -> float:
        """Fraction of repetitions with a successful detection."""
        return self.statistics.detection_rate

    @property
    def peak_separated(self) -> bool:
        """Whether the peak box is separated from the off-peak distribution."""
        return self.statistics.separation() > 0


@dataclass
class Fig6Result:
    """Fig. 6 reproduction: both chips."""

    config: ExperimentConfig
    repetitions: int
    chips: Dict[str, Fig6ChipResult] = field(default_factory=dict)

    def chip(self, chip_name: str) -> Fig6ChipResult:
        """Result of one chip."""
        if chip_name not in self.chips:
            raise KeyError(f"no result for chip {chip_name!r}")
        return self.chips[chip_name]

    @property
    def all_repetitions_detected(self) -> bool:
        """Whether the watermark was detected in every repetition on every chip."""
        return all(result.detection_rate == 1.0 for result in self.chips.values())

    def to_text(self) -> str:
        """Summary of the box-plot statistics."""
        lines = [
            f"Fig. 6 reproduction: correlation statistics over {self.repetitions} repetitions",
            "",
        ]
        for chip_name in sorted(self.chips):
            result = self.chips[chip_name]
            peak = result.peak_box
            off = result.off_peak_box
            lines.append(
                f"  [{chip_name}] peak rotation {result.statistics.peak_rotation}: "
                f"median rho = {peak.median:.4f} "
                f"(box {peak.q1:.4f}..{peak.q3:.4f}, whiskers {peak.whisker_low:.4f}..{peak.whisker_high:.4f})"
            )
            lines.append(
                f"           off-peak: median rho = {off.median:.4f} "
                f"(whiskers {off.whisker_low:.4f}..{off.whisker_high:.4f})"
            )
            lines.append(
                f"           detection rate = {result.detection_rate * 100:.0f}%, "
                f"peak box separated = {result.peak_separated}"
            )
        lines.append("")
        lines.append(f"  detected in all repetitions on all chips: {self.all_repetitions_detected}")
        return "\n".join(lines)


def run_fig6_chip(
    chip_name: str,
    repetitions: int = 100,
    config: Optional[ExperimentConfig] = None,
    base_seed: int = 1000,
    m0_window_cycles: int = 16_384,
    max_repetitions_per_batch: int = 25,
) -> Fig6ChipResult:
    """Run the repeated-measurement campaign for one chip.

    Thin shim over the scenario pipeline (chip → campaign → statistics
    stages).  The repeated acquisitions are detected in batches of
    ``max_repetitions_per_batch`` traces: the measurement noise differs per
    repetition, but all repetitions share one CPA pass per batch, which
    bounds the trace-matrix memory at full paper scale (300,000 cycles).
    Bit-identical to the pre-pipeline driver.
    """
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if max_repetitions_per_batch <= 0:
        raise ValueError("max_repetitions_per_batch must be positive")
    config = config or ExperimentConfig.paper_defaults()
    spec = ScenarioSpec(
        kind="fig6_chip",
        name=f"fig6/{chip_name}",
        chip=chip_name,
        watermark=config.watermark,
        measurement=config.measurement,
        detection=config.detection,
        seed=base_seed,
        repetitions=repetitions,
        m0_window_cycles=m0_window_cycles,
        params={"max_repetitions_per_batch": max_repetitions_per_batch},
    )
    return run_scenario(spec).payload


def run_fig6(
    repetitions: int = 100,
    config: Optional[ExperimentConfig] = None,
    base_seed: int = 1000,
    m0_window_cycles: int = 16_384,
) -> Fig6Result:
    """Reproduce Fig. 6 for both chips (pipeline shim)."""
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    config = config or ExperimentConfig.paper_defaults()
    spec = ScenarioSpec(
        kind="fig6",
        name="fig6",
        watermark=config.watermark,
        measurement=config.measurement,
        detection=config.detection,
        seed=base_seed,
        repetitions=repetitions,
        m0_window_cycles=m0_window_cycles,
    )
    return run_scenario(spec).payload
