"""Fig. 6: repeatability of detection over 100 measurements per chip.

The paper repeats the acquisition 100 times on each chip and shows the
correlation coefficients as box plots: the in-phase (peak) rotation's box
sits clearly above the out-of-phase boxes, and the watermark is detected in
every repetition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import ExperimentConfig
from repro.detection.batch import BatchCPADetector
from repro.detection.statistics import BoxPlotStats, RepetitionStatistics
from repro.experiments.common import build_chip
from repro.experiments.fig5 import _PAPER_PHASE_FRACTION
from repro.measurement.acquisition import AcquisitionCampaign


@dataclass
class Fig6ChipResult:
    """Repeated-measurement statistics of one chip."""

    chip_name: str
    statistics: RepetitionStatistics
    peak_box: BoxPlotStats
    off_peak_box: BoxPlotStats

    @property
    def detection_rate(self) -> float:
        """Fraction of repetitions with a successful detection."""
        return self.statistics.detection_rate

    @property
    def peak_separated(self) -> bool:
        """Whether the peak box is separated from the off-peak distribution."""
        return self.statistics.separation() > 0


@dataclass
class Fig6Result:
    """Fig. 6 reproduction: both chips."""

    config: ExperimentConfig
    repetitions: int
    chips: Dict[str, Fig6ChipResult] = field(default_factory=dict)

    def chip(self, chip_name: str) -> Fig6ChipResult:
        """Result of one chip."""
        if chip_name not in self.chips:
            raise KeyError(f"no result for chip {chip_name!r}")
        return self.chips[chip_name]

    @property
    def all_repetitions_detected(self) -> bool:
        """Whether the watermark was detected in every repetition on every chip."""
        return all(result.detection_rate == 1.0 for result in self.chips.values())

    def to_text(self) -> str:
        """Summary of the box-plot statistics."""
        lines = [
            f"Fig. 6 reproduction: correlation statistics over {self.repetitions} repetitions",
            "",
        ]
        for chip_name in sorted(self.chips):
            result = self.chips[chip_name]
            peak = result.peak_box
            off = result.off_peak_box
            lines.append(
                f"  [{chip_name}] peak rotation {result.statistics.peak_rotation}: "
                f"median rho = {peak.median:.4f} "
                f"(box {peak.q1:.4f}..{peak.q3:.4f}, whiskers {peak.whisker_low:.4f}..{peak.whisker_high:.4f})"
            )
            lines.append(
                f"           off-peak: median rho = {off.median:.4f} "
                f"(whiskers {off.whisker_low:.4f}..{off.whisker_high:.4f})"
            )
            lines.append(
                f"           detection rate = {result.detection_rate * 100:.0f}%, "
                f"peak box separated = {result.peak_separated}"
            )
        lines.append("")
        lines.append(f"  detected in all repetitions on all chips: {self.all_repetitions_detected}")
        return "\n".join(lines)


def run_fig6_chip(
    chip_name: str,
    repetitions: int = 100,
    config: Optional[ExperimentConfig] = None,
    base_seed: int = 1000,
    m0_window_cycles: int = 16_384,
    max_repetitions_per_batch: int = 25,
) -> Fig6ChipResult:
    """Run the repeated-measurement campaign for one chip.

    The repeated acquisitions are detected in batches of
    ``max_repetitions_per_batch`` traces: the measurement noise differs per
    repetition, but all repetitions share one CPA pass per batch, which
    bounds the trace-matrix memory at full paper scale (300,000 cycles).
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    if max_repetitions_per_batch <= 0:
        raise ValueError("max_repetitions_per_batch must be positive")
    config = config or ExperimentConfig.paper_defaults()
    chip = build_chip(chip_name, config=config, m0_window_cycles=m0_window_cycles)
    num_cycles = config.measurement.num_cycles
    period = config.watermark.sequence_period
    phase_offset = int(_PAPER_PHASE_FRACTION.get(chip_name, 0.5) * period)

    # The chip's behaviour is the same in every acquisition (the same
    # program loops on the core); only the measurement noise differs.  The
    # total-power trace behind every batch comes from the chip-level
    # background template cache, so only the first batch pays any power
    # synthesis at all.
    campaign = AcquisitionCampaign(config.measurement)
    detector = BatchCPADetector(config.detection)
    sequence = chip.watermark_sequence()

    runs: List[np.ndarray] = []
    detections: List[bool] = []
    for start in range(0, repetitions, max_repetitions_per_batch):
        stop = min(repetitions, start + max_repetitions_per_batch)
        # Whole-batch synthesis: the acquisition chain statistics are
        # computed once and each repetition contributes one noise row
        # (bit-identical to measuring repetition by repetition).
        trace_matrix = campaign.measure_chip_many(
            chip,
            num_cycles,
            seeds=range(base_seed + start, base_seed + stop),
            watermark_active=True,
            power_seed=base_seed,
            watermark_phase_offset=phase_offset,
        )
        batch = detector.detect_many(sequence, trace_matrix)
        runs.extend(batch.correlations)
        detections.extend(bool(flag) for flag in batch.detected)

    statistics = RepetitionStatistics.from_correlation_runs(
        chip_name, runs, detected_flags=detections
    )
    return Fig6ChipResult(
        chip_name=chip_name,
        statistics=statistics,
        peak_box=statistics.peak_box(),
        off_peak_box=statistics.off_peak_box(),
    )


def run_fig6(
    repetitions: int = 100,
    config: Optional[ExperimentConfig] = None,
    base_seed: int = 1000,
    m0_window_cycles: int = 16_384,
) -> Fig6Result:
    """Reproduce Fig. 6 for both chips."""
    config = config or ExperimentConfig.paper_defaults()
    result = Fig6Result(config=config, repetitions=repetitions)
    for chip_name in ("chip1", "chip2"):
        result.chips[chip_name] = run_fig6_chip(
            chip_name,
            repetitions=repetitions,
            config=config,
            base_seed=base_seed + (0 if chip_name == "chip1" else 500),
            m0_window_cycles=m0_window_cycles,
        )
    return result
