"""Fig. 5: spread spectra of CPA results on chips I and II.

Four panels: chip I with the watermark active and inactive, chip II with
the watermark active and inactive.  With the watermark active a single
correlation peak must be resolvable; with the watermark disabled the
spectrum must stay inside the statistical noise floor (the control
experiment showing that the peak is not correlated system noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import ExperimentConfig
from repro.detection.cpa import CPAResult
from repro.detection.spread_spectrum import SpreadSpectrum


@dataclass
class Fig5Panel:
    """One of the four panels of Fig. 5."""

    chip_name: str
    watermark_active: bool
    spectrum: SpreadSpectrum
    cpa: CPAResult

    @property
    def label(self) -> str:
        """Panel label in the paper's naming."""
        state = "active" if self.watermark_active else "inactive"
        return f"{self.chip_name} / watermark {state}"


@dataclass
class Fig5Result:
    """All four panels plus the shared experiment configuration."""

    config: ExperimentConfig
    panels: Dict[str, Fig5Panel] = field(default_factory=dict)

    def panel(self, chip_name: str, watermark_active: bool) -> Fig5Panel:
        """Look up one panel."""
        key = _panel_key(chip_name, watermark_active)
        if key not in self.panels:
            raise KeyError(f"panel {key!r} was not produced; available: {sorted(self.panels)}")
        return self.panels[key]

    @property
    def all_active_panels_detected(self) -> bool:
        """Whether every watermark-active panel shows a detected watermark."""
        return all(p.cpa.detected for p in self.panels.values() if p.watermark_active)

    @property
    def no_inactive_panel_detected(self) -> bool:
        """Whether no watermark-inactive panel produced a false detection."""
        return all(not p.cpa.detected for p in self.panels.values() if not p.watermark_active)

    def to_text(self) -> str:
        """Summary of all panels."""
        lines = [
            "Fig. 5 reproduction: CPA spread spectra "
            f"({self.config.measurement.num_cycles} cycles per correlation)",
            "",
        ]
        for key in sorted(self.panels):
            panel = self.panels[key]
            lines.append(f"  [{panel.label}] {panel.cpa.summary()}")
        lines.append("")
        lines.append(f"  all active panels detected:   {self.all_active_panels_detected}")
        lines.append(f"  no inactive false detections: {self.no_inactive_panel_detected}")
        return "\n".join(lines)


def _panel_key(chip_name: str, watermark_active: bool) -> str:
    return f"{chip_name}/{'active' if watermark_active else 'inactive'}"


#: Fraction of the sequence period at which the paper's correlation peaks
#: appear (the LFSR phase is arbitrary relative to the scope trigger; the
#: silicon measurements happened to land at rotations ~3,800 and ~2,400 of
#: the 4,095-cycle sequence).
_PAPER_PHASE_FRACTION = {"chip1": 3800 / 4095, "chip2": 2400 / 4095}


def run_fig5_panel(
    chip_name: str,
    watermark_active: bool,
    config: Optional[ExperimentConfig] = None,
    seed: int = 100,
    m0_window_cycles: int = 16_384,
    phase_offset: Optional[int] = None,
) -> Fig5Panel:
    """Produce one panel of Fig. 5.

    Thin shim over the scenario pipeline (chip → acquisition → detection
    stages); the chip-level acquisition behind the pipeline is served from
    the shared background-template and M0-window caches, so the four
    panels -- and any repeated runs -- share one cycle-accurate core
    simulation per (program, window).  Bit-identical to the pre-pipeline
    driver for canonical chip names; alias spellings ("chipI", "1", ...)
    now canonicalise first, so they behave exactly like the canonical
    name instead of silently falling back to the generic phase offset.
    """
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    config = config or ExperimentConfig.paper_defaults()
    spec = ScenarioSpec(
        kind="fig5_panel",
        name=f"fig5/{chip_name}-{'active' if watermark_active else 'inactive'}",
        chip=chip_name,
        watermark=config.watermark,
        measurement=config.measurement,
        detection=config.detection,
        watermark_active=watermark_active,
        seed=seed,
        phase_offset=phase_offset,
        m0_window_cycles=m0_window_cycles,
    )
    return run_scenario(spec).payload


def run_fig5(
    config: Optional[ExperimentConfig] = None,
    seed: int = 100,
    m0_window_cycles: int = 16_384,
) -> Fig5Result:
    """Reproduce all four panels of Fig. 5 (pipeline shim)."""
    from repro.core.spec import ScenarioSpec
    from repro.pipeline.runner import run_scenario

    config = config or ExperimentConfig.paper_defaults()
    spec = ScenarioSpec(
        kind="fig5",
        name="fig5",
        watermark=config.watermark,
        measurement=config.measurement,
        detection=config.detection,
        seed=seed,
        m0_window_cycles=m0_window_cycles,
    )
    return run_scenario(spec).payload
