"""Export experiment results to CSV/JSON for external plotting.

The paper's figures are plots; this reproduction is terminal-based, so the
experiment drivers expose their raw series here in formats any plotting tool
can ingest (the CSV schema mirrors the paper's axes).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.experiments.fig2 import Fig2Result
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result

PathLike = Union[str, Path]


def export_fig2_csv(result: Fig2Result, path: PathLike) -> Path:
    """Per-cycle waveforms of Fig. 2: cycle, WMARK, toggles of both schemes."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["cycle", "wmark", "load_circuit_toggles", "clock_modulation_toggles"])
        for cycle in range(result.num_cycles):
            writer.writerow(
                [
                    cycle,
                    int(result.wmark[cycle]),
                    int(result.baseline_toggles[cycle]),
                    int(result.clock_modulation_toggles[cycle]),
                ]
            )
    return path


def export_fig5_csv(result: Fig5Result, path: PathLike) -> Path:
    """Spread spectra of Fig. 5: one row per (panel, rotation)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["chip", "watermark_active", "rotation", "correlation"])
        for key in sorted(result.panels):
            panel = result.panels[key]
            for rotation, correlation in panel.spectrum.to_series():
                writer.writerow(
                    [panel.chip_name, int(panel.watermark_active), rotation, f"{correlation:.6f}"]
                )
    return path


def export_fig6_csv(result: Fig6Result, path: PathLike) -> Path:
    """Fig. 6 box-plot source data: peak and off-peak correlations per chip."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["chip", "kind", "correlation"])
        for chip_name in sorted(result.chips):
            stats = result.chips[chip_name].statistics
            for value in stats.peak_values:
                writer.writerow([chip_name, "peak", f"{value:.6f}"])
            for value in stats.off_peak_values:
                writer.writerow([chip_name, "off_peak", f"{value:.6f}"])
    return path


def export_table1_csv(result: Table1Result, path: PathLike) -> Path:
    """Table I rows as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["switching_registers", "dynamic_w", "static_w", "total_w", "share_of_watermark_dynamic"]
        )
        for row in result.rows:
            writer.writerow(
                [
                    row.switching_registers,
                    f"{row.dynamic_w:.6e}",
                    f"{row.static_w:.6e}",
                    f"{row.total_w:.6e}",
                    f"{row.share_of_watermark_dynamic:.4f}",
                ]
            )
    return path


def export_table2_csv(result: Table2Result, path: PathLike) -> Path:
    """Table II rows as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["load_power_w", "load_registers", "overhead_reduction"])
        for row in result.table:
            writer.writerow(
                [f"{row.load_power_w:.6e}", row.load_registers, f"{row.overhead_reduction:.4f}"]
            )
    return path


def export_summary_json(results: dict, path: PathLike) -> Path:
    """Write a JSON summary of headline numbers.

    ``results`` maps experiment names to already-serialisable dictionaries;
    the helper only adds consistent formatting and file handling.
    """
    path = Path(path)
    with path.open("w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
