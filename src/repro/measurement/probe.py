"""Active differential probe model.

The Agilent 1130A used in the paper is a 1.5 GHz active differential probe;
what matters for the reproduction is its finite bandwidth relative to the
oscilloscope channel and its additive input-referred noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import signal

from repro.measurement.noise import gaussian_noise


@dataclass(frozen=True)
class DifferentialProbe:
    """An active differential voltage probe.

    Attributes
    ----------
    gain:
        Voltage gain (attenuation ratios are expressed as gains < 1).
    bandwidth_hz:
        -3 dB bandwidth of the probe/front-end combination.
    noise_rms_v:
        Input-referred RMS voltage noise per sample.
    """

    gain: float = 1.0
    bandwidth_hz: float = 120e6
    noise_rms_v: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError("probe gain must be positive")
        if self.bandwidth_hz <= 0:
            raise ValueError("probe bandwidth must be positive")
        if self.noise_rms_v < 0:
            raise ValueError("probe noise must be non-negative")

    def apply(
        self,
        voltage_v: np.ndarray,
        sampling_frequency_hz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Band-limit, scale and add noise to a sampled voltage waveform."""
        if sampling_frequency_hz <= 0:
            raise ValueError("sampling frequency must be positive")
        samples = np.asarray(voltage_v, dtype=np.float64) * self.gain
        nyquist = sampling_frequency_hz / 2.0
        if self.bandwidth_hz < nyquist and len(samples) > 12:
            normalized_cutoff = self.bandwidth_hz / nyquist
            b, a = signal.butter(2, normalized_cutoff, btype="low")
            samples = signal.lfilter(b, a, samples)
        if rng is not None and self.noise_rms_v > 0:
            samples = samples + gaussian_noise(rng, self.noise_rms_v * self.gain, len(samples))
        return samples
