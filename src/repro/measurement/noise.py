"""Noise models of the acquisition chain."""

from __future__ import annotations

from typing import Optional

import numpy as np


def gaussian_noise(
    rng: np.random.Generator, rms: float, size: int
) -> np.ndarray:
    """Zero-mean Gaussian noise with the given RMS value."""
    if rms < 0:
        raise ValueError("noise RMS must be non-negative")
    if size < 0:
        raise ValueError("size must be non-negative")
    if rms == 0:
        return np.zeros(size)
    return rng.normal(0.0, rms, size=size)


def gaussian_noise_into(
    rng: np.random.Generator, rms: float, out: np.ndarray
) -> np.ndarray:
    """Fill ``out`` with zero-mean Gaussian noise of the given RMS, in place.

    Bit-identical to :func:`gaussian_noise` for the same generator state
    (``standard_normal`` scaled by ``rms`` is the same draw ``normal``
    performs internally) but writes straight into a caller-provided buffer
    -- e.g. one row of a trial matrix -- instead of allocating a fresh
    array per call.  ``out`` must be contiguous; like :func:`gaussian_noise`,
    an ``rms`` of zero consumes no random draws.
    """
    if rms < 0:
        raise ValueError("noise RMS must be non-negative")
    if rms == 0:
        out[...] = 0.0
        return out
    rng.standard_normal(out=out, dtype=out.dtype)
    out *= rms
    return out


def quantization_noise_rms(full_scale: float, bits: int) -> float:
    """RMS quantisation noise of an ideal ``bits``-bit ADC.

    The classic ``LSB / sqrt(12)`` result for a uniform quantiser.
    """
    if full_scale <= 0:
        raise ValueError("full scale must be positive")
    if bits <= 0:
        raise ValueError("bit count must be positive")
    lsb = full_scale / (2 ** bits)
    return lsb / np.sqrt(12.0)


def transient_residual_sigma(
    mean_power_w: float,
    floor_w: float,
    fraction: float,
) -> float:
    """Per-cycle residual noise of unsettled switching transients.

    Averaging 50 oscilloscope samples per clock cycle does not remove the
    cycle-to-cycle variability of the switching-current transients (di/dt
    spikes, package/board resonances, vertical-range scaling of the scope).
    The residual is modelled as ``floor + fraction * mean_power``: a fixed
    floor plus a component proportional to the chip's mean power, because a
    chip that draws more current forces a larger oscilloscope vertical
    range and proportionally larger front-end/transient noise.

    The default values in :class:`repro.core.config.MeasurementConfig` are
    calibrated so that the resulting correlation amplitudes match the
    silicon measurements of the paper's Fig. 5.
    """
    if mean_power_w < 0:
        raise ValueError("mean power must be non-negative")
    if floor_w < 0 or fraction < 0:
        raise ValueError("noise parameters must be non-negative")
    return floor_w + fraction * mean_power_w
