"""Shunt-resistor current sensing.

The test board routes the summed current of all power domains through a
270 mOhm shunt resistor; the voltage across the shunt is what the probe and
oscilloscope observe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShuntResistor:
    """A current-sense resistor in the chip's supply path.

    Attributes
    ----------
    resistance_ohm:
        Shunt value (0.270 ohm on the paper's test board).
    tolerance:
        Relative resistance tolerance; the acquisition applies a fixed gain
        error drawn once per campaign within this tolerance.
    """

    resistance_ohm: float = 0.270
    tolerance: float = 0.01

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ValueError("shunt resistance must be positive")
        if not 0.0 <= self.tolerance < 1.0:
            raise ValueError("tolerance must be within [0, 1)")

    def voltage_from_current(self, current_a: np.ndarray) -> np.ndarray:
        """Voltage drop across the shunt for the given current samples."""
        return np.asarray(current_a, dtype=np.float64) * self.resistance_ohm

    def current_from_voltage(self, voltage_v: np.ndarray) -> np.ndarray:
        """Current inferred from a measured shunt voltage."""
        return np.asarray(voltage_v, dtype=np.float64) / self.resistance_ohm

    def power_from_voltage(self, voltage_v: np.ndarray, supply_voltage_v: float) -> np.ndarray:
        """Chip power inferred from the shunt voltage and the supply rail."""
        if supply_voltage_v <= 0:
            raise ValueError("supply voltage must be positive")
        return self.current_from_voltage(voltage_v) * supply_voltage_v

    def dissipation_w(self, current_a: float) -> float:
        """Power dissipated in the shunt itself (sanity checks / board design)."""
        return current_a * current_a * self.resistance_ohm
