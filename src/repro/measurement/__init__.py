"""Measurement chain: shunt resistor, differential probe, oscilloscope.

Models the bench setup of Section IV: the chip's supply current flows
through a 270 mOhm shunt resistor; an active differential probe senses the
shunt voltage; an oscilloscope samples it at 500 MS/s; and 50 samples are
averaged into one value per 10 MHz clock cycle, producing the measured
power vector ``Y`` the CPA detector consumes.
"""

from repro.measurement.shunt import ShuntResistor
from repro.measurement.probe import DifferentialProbe
from repro.measurement.oscilloscope import Oscilloscope, CaptureResult
from repro.measurement.noise import (
    gaussian_noise,
    transient_residual_sigma,
    quantization_noise_rms,
)
from repro.measurement.acquisition import AcquisitionCampaign, MeasuredTrace

__all__ = [
    "ShuntResistor",
    "DifferentialProbe",
    "Oscilloscope",
    "CaptureResult",
    "gaussian_noise",
    "transient_residual_sigma",
    "quantization_noise_rms",
    "AcquisitionCampaign",
    "MeasuredTrace",
]
