"""Oscilloscope sampling and quantisation.

The MSO6032A digitises the probe output with an 8-bit ADC at 500 MS/s.  The
model applies vertical-range clipping and uniform quantisation, then
averages the samples belonging to each clock cycle into one value -- the
reduction step described in Section III of the paper (``f_s >> f_clk``, so
each element of the measured vector ``Y`` is the average power of one
cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class CaptureResult:
    """Digitised capture plus its reduction to per-cycle averages."""

    raw_samples: np.ndarray
    per_cycle_average: np.ndarray
    full_scale_v: float
    lsb_v: float

    @property
    def num_cycles(self) -> int:
        """Number of clock cycles covered by the capture."""
        return len(self.per_cycle_average)


@dataclass(frozen=True)
class Oscilloscope:
    """An N-bit digitising oscilloscope channel."""

    sampling_frequency_hz: float = 500e6
    adc_bits: int = 8
    range_headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.sampling_frequency_hz <= 0:
            raise ValueError("sampling frequency must be positive")
        if self.adc_bits < 4:
            raise ValueError("ADC resolution below 4 bits is not supported")
        if self.range_headroom < 1.0:
            raise ValueError("range headroom must be at least 1.0")

    def vertical_full_scale(self, samples: np.ndarray) -> float:
        """Full-scale range chosen to contain the waveform with headroom."""
        peak = float(np.max(np.abs(samples))) if len(samples) else 0.0
        if peak == 0.0:
            return 1.0
        return peak * self.range_headroom

    def digitize(self, samples: np.ndarray, full_scale_v: Optional[float] = None) -> tuple:
        """Clip and quantise a waveform; returns ``(digitised, full_scale, lsb)``."""
        samples = np.asarray(samples, dtype=np.float64)
        full_scale = full_scale_v if full_scale_v is not None else self.vertical_full_scale(samples)
        lsb = (2.0 * full_scale) / (2 ** self.adc_bits)
        clipped = np.clip(samples, -full_scale, full_scale)
        digitised = np.round(clipped / lsb) * lsb
        return digitised, full_scale, lsb

    def capture(
        self,
        samples: np.ndarray,
        samples_per_cycle: int,
        full_scale_v: Optional[float] = None,
    ) -> CaptureResult:
        """Digitise a waveform and reduce it to per-cycle averages."""
        if samples_per_cycle <= 0:
            raise ValueError("samples_per_cycle must be positive")
        digitised, full_scale, lsb = self.digitize(samples, full_scale_v)
        usable = (len(digitised) // samples_per_cycle) * samples_per_cycle
        if usable == 0:
            raise ValueError("capture shorter than one clock cycle")
        per_cycle = digitised[:usable].reshape(-1, samples_per_cycle).mean(axis=1)
        return CaptureResult(
            raw_samples=digitised,
            per_cycle_average=per_cycle,
            full_scale_v=full_scale,
            lsb_v=lsb,
        )
