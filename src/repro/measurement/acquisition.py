"""Acquisition campaigns: from a chip power trace to the CPA vector ``Y``.

Two measurement paths are provided:

* a **detailed** path that synthesises the 500 MS/s shunt-voltage waveform
  (per-cycle current expanded with a switching-transient pulse shape),
  passes it through the probe (band-limiting plus noise) and the
  oscilloscope (vertical range, 8-bit quantisation) and averages back to
  one value per clock cycle; and
* a **fast** path that applies the statistically equivalent per-cycle noise
  directly, which is what the long 300,000-cycle (and 100-repetition)
  experiments use.

Both produce a :class:`MeasuredTrace` whose ``values`` array is the
measured per-cycle power vector ``Y``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import MeasurementConfig
from repro.measurement.noise import (
    gaussian_noise,
    gaussian_noise_into,
    quantization_noise_rms,
    transient_residual_sigma,
)
from repro.measurement.oscilloscope import Oscilloscope
from repro.measurement.probe import DifferentialProbe
from repro.measurement.shunt import ShuntResistor
from repro.power.trace import PowerTrace


@dataclass
class MeasuredTrace:
    """The per-cycle measured power vector ``Y`` plus acquisition metadata."""

    name: str
    values: np.ndarray
    config: MeasurementConfig
    seed: Optional[int] = None
    detailed: bool = False

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError("measured trace must be one-dimensional")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_cycles(self) -> int:
        """Number of per-cycle values."""
        return len(self.values)

    @property
    def mean_power_w(self) -> float:
        """Mean of the measured per-cycle power."""
        if len(self.values) == 0:
            return 0.0
        return float(np.mean(self.values))

    @property
    def std_power_w(self) -> float:
        """Standard deviation of the measured per-cycle power."""
        if len(self.values) == 0:
            return 0.0
        return float(np.std(self.values))


class AcquisitionCampaign:
    """Measures chip power traces with the modelled bench setup."""

    #: Normalised two-spike pulse shape factors used by the detailed path:
    #: most of a cycle's charge is delivered right after the two clock edges.
    _EDGE_FRACTION = 0.35

    def __init__(self, config: Optional[MeasurementConfig] = None) -> None:
        self.config = config or MeasurementConfig()
        self.shunt = ShuntResistor(resistance_ohm=self.config.shunt_resistance_ohm)
        self.probe = DifferentialProbe(
            bandwidth_hz=self.config.probe_bandwidth_hz,
            noise_rms_v=self.config.probe_noise_rms_v,
        )
        self.oscilloscope = Oscilloscope(
            sampling_frequency_hz=self.config.sampling_frequency_hz,
            adc_bits=self.config.adc_bits,
        )

    @classmethod
    def from_spec(cls, spec) -> "AcquisitionCampaign":
        """Build the acquisition chain a :class:`ScenarioSpec` describes."""
        return cls(spec.measurement)

    # -- noise bookkeeping -----------------------------------------------------

    def per_cycle_noise_sigma(self, mean_power_w: float, full_scale_v: float) -> float:
        """Effective per-cycle noise sigma (in watts) of the whole chain."""
        spc = self.config.samples_per_cycle
        transient = transient_residual_sigma(
            mean_power_w,
            self.config.transient_noise_floor_w,
            self.config.transient_noise_fraction,
        )
        probe_power = (
            self.config.probe_noise_rms_v
            / self.config.shunt_resistance_ohm
            * self.config.supply_voltage_v
        )
        quant_power = (
            quantization_noise_rms(full_scale_v, self.config.adc_bits)
            / self.config.shunt_resistance_ohm
            * self.config.supply_voltage_v
        )
        per_sample = np.sqrt(probe_power**2 + quant_power**2)
        return float(np.sqrt(transient**2 + (per_sample**2) / spc))

    # -- measurement paths --------------------------------------------------------

    def measure(
        self,
        power_trace: PowerTrace,
        seed: Optional[int] = None,
        detailed: bool = False,
    ) -> MeasuredTrace:
        """Measure a chip power trace and return the CPA vector ``Y``."""
        if seed is None:
            seed = self.config.seed
        if detailed:
            return self._measure_detailed(power_trace, seed)
        return self._measure_fast(power_trace, seed)

    def _fast_path_sigma(self, power_trace: PowerTrace) -> float:
        """Effective per-cycle noise sigma of the fast measurement path.

        Shared by :meth:`measure` and :meth:`measure_many` so the two can
        never drift apart on the acquisition-chain statistics.
        """
        power = power_trace.power_w
        mean_power = float(np.mean(power)) if len(power) else 0.0
        peak_voltage = (
            (power_trace.peak_power_w / self.config.supply_voltage_v)
            * self.config.shunt_resistance_ohm
        )
        full_scale = max(peak_voltage * self.oscilloscope.range_headroom, 1e-6)
        return self.per_cycle_noise_sigma(mean_power, full_scale)

    def _measure_fast(self, power_trace: PowerTrace, seed: Optional[int]) -> MeasuredTrace:
        rng = np.random.default_rng(seed)
        power = power_trace.power_w
        sigma = self._fast_path_sigma(power_trace)
        measured = power + gaussian_noise(rng, sigma, len(power))
        return MeasuredTrace(
            name=f"{power_trace.name}/measured",
            values=measured,
            config=self.config,
            seed=seed,
            detailed=False,
        )

    def measure_many(
        self,
        power_trace: PowerTrace,
        seeds: Sequence[Optional[int]],
        detailed: bool = False,
    ) -> np.ndarray:
        """Measure the same power trace once per seed into a trial matrix.

        Returns a ``len(seeds) x num_cycles`` array whose row ``r`` is
        bit-identical to ``measure(power_trace, seed=seeds[r]).values``.
        On the fast path the acquisition-chain statistics (mean power,
        vertical range, effective noise sigma) are hoisted out of the
        per-repetition loop, so only one vectorised noise draw per row
        remains; the matrix feeds straight into
        :meth:`repro.detection.batch.BatchCPADetector.detect_many`.
        The detailed path falls back to per-row measurement.
        """
        seeds = list(seeds)
        if not seeds:
            raise ValueError("at least one seed is required")
        if detailed:
            return np.stack(
                [self.measure(power_trace, seed=seed, detailed=True).values for seed in seeds]
            )
        power = power_trace.power_w
        sigma = self._fast_path_sigma(power_trace)
        matrix = np.empty((len(seeds), len(power)), dtype=np.float64)
        for row, seed in enumerate(seeds):
            rng = np.random.default_rng(self.config.seed if seed is None else seed)
            # In-place: noise straight into the row, then add the shared
            # power template -- bit-identical to ``power + gaussian_noise``
            # without one temporary row allocation per repetition.
            gaussian_noise_into(rng, sigma, matrix[row])
            matrix[row] += power
        return matrix

    # -- chip-level entry points --------------------------------------------------

    def measure_chip(
        self,
        chip,
        num_cycles: int,
        watermark_active: bool = True,
        power_seed: Optional[int] = None,
        seed: Optional[int] = None,
        watermark_phase_offset: int = 0,
        detailed: bool = False,
    ) -> MeasuredTrace:
        """Measure a chip's total power directly (one acquisition).

        Convenience wrapper over ``chip.total_power(...)`` followed by
        :meth:`measure`; because the chip's background power is served from
        the chip-level template cache, repeated acquisitions of the same
        chip configuration skip both the M0 window simulation and the
        background block-activity draws entirely.
        """
        power = chip.total_power(
            num_cycles,
            watermark_active=watermark_active,
            seed=power_seed,
            watermark_phase_offset=watermark_phase_offset,
        )
        return self.measure(power, seed=seed, detailed=detailed)

    def measure_chip_many(
        self,
        chip,
        num_cycles: int,
        seeds: Sequence[Optional[int]],
        watermark_active: bool = True,
        power_seed: Optional[int] = None,
        watermark_phase_offset: int = 0,
        detailed: bool = False,
    ) -> np.ndarray:
        """Measure a chip's total power once per seed into a trial matrix.

        The chip behaviour (power trace) is computed once -- through the
        chip-level background template cache -- and only the measurement
        noise differs per row, exactly as on the bench where the same
        program loops during every acquisition.
        """
        power = chip.total_power(
            num_cycles,
            watermark_active=watermark_active,
            seed=power_seed,
            watermark_phase_offset=watermark_phase_offset,
        )
        return self.measure_many(power, seeds, detailed=detailed)

    def _measure_detailed(self, power_trace: PowerTrace, seed: Optional[int]) -> MeasuredTrace:
        rng = np.random.default_rng(seed)
        spc = self.config.samples_per_cycle
        supply = self.config.supply_voltage_v
        current_per_cycle = power_trace.power_w / supply

        # Expand each cycle into `spc` samples with a two-spike pulse shape
        # whose per-cycle mean equals the cycle's average current.
        pulse = self._pulse_shape(spc)
        samples = np.repeat(current_per_cycle, spc) * np.tile(pulse, len(current_per_cycle))

        # Cycle-to-cycle transient variability that the averaging later does
        # not remove (di/dt spikes, board resonances); applied per sample so
        # the detailed and fast paths agree statistically after reduction.
        mean_power = float(np.mean(power_trace.power_w)) if len(power_trace) else 0.0
        transient_sigma_cycle = transient_residual_sigma(
            mean_power,
            self.config.transient_noise_floor_w,
            self.config.transient_noise_fraction,
        )
        transient_sigma_sample = transient_sigma_cycle * np.sqrt(spc) / supply
        samples = samples + gaussian_noise(rng, transient_sigma_sample, len(samples))

        shunt_voltage = self.shunt.voltage_from_current(samples)
        probed = self.probe.apply(shunt_voltage, self.config.sampling_frequency_hz, rng=rng)
        capture = self.oscilloscope.capture(probed, samples_per_cycle=spc)
        measured_current = self.shunt.current_from_voltage(capture.per_cycle_average)
        measured_power = measured_current * supply
        return MeasuredTrace(
            name=f"{power_trace.name}/measured",
            values=measured_power,
            config=self.config,
            seed=seed,
            detailed=True,
        )

    @staticmethod
    def _pulse_shape(samples_per_cycle: int) -> np.ndarray:
        """Two-spike, mean-one pulse shape representing edge-triggered current."""
        if samples_per_cycle <= 0:
            raise ValueError("samples_per_cycle must be positive")
        shape = np.ones(samples_per_cycle, dtype=np.float64)
        if samples_per_cycle >= 8:
            edge_width = max(1, samples_per_cycle // 10)
            rising = np.arange(edge_width)
            decay = np.exp(-rising / max(1.0, edge_width / 2.0))
            boost = np.zeros(samples_per_cycle)
            boost[:edge_width] += decay
            half = samples_per_cycle // 2
            boost[half:half + edge_width] += decay
            shape = shape + 4.0 * boost
        return shape / shape.mean()

    # -- campaigns ---------------------------------------------------------------

    def repeat_measurements(
        self,
        power_trace: PowerTrace,
        repetitions: int,
        base_seed: int = 0,
        detailed: bool = False,
    ) -> List[MeasuredTrace]:
        """Measure the same power trace ``repetitions`` times (Fig. 6 style).

        Each repetition uses an independent noise realisation; the chip
        behaviour (power trace) is identical, as on the bench where the
        same program loops during every acquisition.
        """
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        return [
            self.measure(power_trace, seed=base_seed + i, detailed=detailed)
            for i in range(repetitions)
        ]
