"""Small shared caching utilities.

The chip-level background subsystem keeps two module-level caches (the
simulated M0 window in :mod:`repro.soc.cpu` and the background-power
templates in :mod:`repro.soc.chip`).  Both need the same bookkeeping --
keyed get-or-compute, hit/miss/eviction counters, explicit clearing and an
LRU size bound -- so it lives here once instead of twice.

Sharing contract: a cached value is served to *every* caller, so an
ndarray handed to :meth:`LRUCache.get_or_compute`'s ``compute`` must be
frozen (``array.flags.writeable = False``) before it is returned -- one
caller mutating a served array would silently corrupt every other
caller's "cached" result.  The ``CACHE001`` rule in
:mod:`repro.analysis` enforces this statically at the call sites.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, TypeVar, Union

Value = TypeVar("Value")


class LRUCache:
    """A keyed get-or-compute cache with LRU eviction and counters.

    ``max_entries`` may be an int or a zero-argument callable returning
    one; the callable form lets callers expose the bound as a module
    constant that tests can monkeypatch.

    Thread-safe: bookkeeping (lookup, insertion, LRU reordering,
    counters) happens under a lock, so concurrent service threads cannot
    corrupt the ``OrderedDict``.  ``compute`` runs *outside* the lock --
    it may be seconds of simulation -- so two threads missing the same
    key may both compute; the first insertion wins and the duplicate is
    discarded, which is safe because cached values are immutable by the
    sharing contract above.
    """

    def __init__(self, max_entries: Union[int, Callable[[], int]]) -> None:
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._counters = {"hits": 0, "misses": 0, "evictions": 0}
        self._lock = threading.RLock()

    def _bound(self) -> int:
        bound = self._max_entries() if callable(self._max_entries) else self._max_entries
        if bound <= 0:
            raise ValueError("the cache size bound must be positive")
        return bound

    def get_or_compute(self, key: Hashable, compute: Callable[[], Value]) -> Value:
        """The cached value for ``key``, computing (and retaining) it on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._counters["misses"] += 1
            else:
                self._counters["hits"] += 1
                self._entries.move_to_end(key)
                return value
        value = compute()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # A concurrent thread computed it first; serve that copy
                # so every caller shares one (frozen) value.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = value
            bound = self._bound()
            while len(self._entries) > bound:
                self._entries.popitem(last=False)
                self._counters["evictions"] += 1
        return value

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._counters.update(hits=0, misses=0, evictions=0)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        with self._lock:
            stats = dict(self._counters)
            stats["entries"] = len(self._entries)
            return stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
