#!/usr/bin/env python3
"""Scenario/Pipeline API tour: specs in, typed artifacts out.

Shows the declarative experiment layer end to end:

1. define a :class:`ScenarioSpec` (chip, watermark, bench, detection, seed);
2. run it through :class:`ExperimentRunner` and read the typed result
   (scalars, named arrays, report, provenance);
3. save the artifact (JSON + ``.npz``), reload it bit-exactly;
4. run a registry-driven sweep in one runner so all scenarios share the
   chip instances and template caches;
5. expand a base scenario into a cartesian :class:`SpecGrid` and run it
   on the process-pool backend -- bit-identical results, parallel wall
   clock on multi-core machines.

Run:  python examples/scenario_api.py [--quick]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.config import MeasurementConfig
from repro.pipeline import (
    DEFAULT_REGISTRY,
    ExperimentRunner,
    RunOptions,
    ScenarioResult,
    ScenarioSpec,
    SpecGrid,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced acquisition (40,000 cycles) for a fast demo",
    )
    args = parser.parse_args()
    cycles = 40_000 if args.quick else 100_000

    # 1. A scenario is data: this is Fig. 5's chip-I active panel, but any
    #    field -- chip, workload, noise, detection threshold -- is one edit.
    spec = ScenarioSpec(
        kind="fig5_panel",
        name="demo/chip1-active",
        chip="chip1",
        measurement=MeasurementConfig.quick(cycles),
        seed=100,
    )
    print(f"spec hash: {spec.spec_hash()[:12]}")
    print(spec.to_json())

    # 2. One runner executes it through chip -> acquisition -> detection.
    runner = ExperimentRunner()
    result = runner.run(spec)
    print(result.report)
    print(f"scalars: {result.scalars}")
    print(f"arrays:  { {k: v.shape for k, v in result.arrays.items()} }")

    # 3. Artifacts round-trip: JSON for spec/scalars/provenance, .npz for
    #    arrays, bit-exact on reload.
    with tempfile.TemporaryDirectory() as tmp:
        path = result.save(Path(tmp) / "demo")
        reloaded = ScenarioResult.load(path)
        assert (reloaded.arrays["correlations"] == result.arrays["correlations"]).all()
        print(f"artifact round-trip OK ({path.name} + {path.with_suffix('.npz').name})")

    # 4. Registry sweep: four scenarios, one runner, shared caches.
    options = RunOptions(quick=True, cycles=cycles, repetitions=5)
    sweep = runner.run_many(
        DEFAULT_REGISTRY.build(name, options)
        for name in ("fig5/chip1-active", "fig5/chip1-inactive", "fig6/chip1", "fig3")
    )
    for scenario in sweep:
        print(f"  {scenario.name:<22} {scenario.provenance.elapsed_s:6.2f} s")
    print(f"sweep total: {sweep.elapsed_s:.2f} s (chip cache: {runner.chip_cache_stats()})")

    # 5. Grid sweep on the process backend: a base scenario expanded over
    #    seeds, executed by worker processes, results back in submission
    #    order with the same scalars/arrays/reports as the serial backend.
    specs = SpecGrid("fig5/chip1-active", options).build(seeds=[100, 101, 102])
    parallel = runner.run_many(specs, backend="process", max_workers=2)
    for scenario in parallel:
        status = "ok" if scenario.ok else "FAILED"
        print(f"  {scenario.name:<32} {status}  {scenario.report}")
    print(
        f"grid sweep ({len(parallel)} cells, process backend): "
        f"{parallel.elapsed_s:.2f} s wall clock"
    )
    assert parallel.get("fig5/chip1-active[seed=100]").report == runner.run(
        specs[0]
    ).report  # parallel == serial, bit for bit


if __name__ == "__main__":
    main()
