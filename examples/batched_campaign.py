#!/usr/bin/env python3
"""Batched Monte-Carlo campaign: a detection-probability curve in one pass.

Shows the batched detection engine at campaign scale:

1. size a watermark operating point (amplitude, bench noise) below the
   paper's corner, where detection is *not* guaranteed;
2. sweep acquisition lengths, running every length's Monte-Carlo trials as
   one trial matrix through ``BatchCPADetector`` (one stack of rFFTs per
   batch instead of one Python round trip per trial);
3. print the empirical detection-probability curve next to the analytical
   sufficient-cycle estimate, plus a masking-robustness sweep that reuses
   the same batched engine.

Run:  python examples/batched_campaign.py [--trials 100]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import MaskingAttack, assess_detection_robustness
from repro.core.lfsr import LFSR
from repro.detection import run_detection_probability_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trials",
        type=int,
        default=100,
        help="Monte-Carlo trials per acquisition length",
    )
    parser.add_argument(
        "--max-trials-per-chunk",
        type=int,
        default=25,
        help="trial rows materialised at once (memory bound)",
    )
    args = parser.parse_args()

    sequence = LFSR(width=8, seed=0x2D).sequence()
    amplitude_w = 1.5e-3
    noise_w = 25e-3

    start = time.perf_counter()
    curve = run_detection_probability_campaign(
        sequence,
        watermark_amplitude_w=amplitude_w,
        noise_sigma_w=noise_w,
        cycle_counts=(5_000, 20_000, 80_000, 160_000),
        trials_per_point=args.trials,
        max_trials_per_chunk=args.max_trials_per_chunk,
        seed=1,
    )
    elapsed = time.perf_counter() - start
    print(curve.to_text())
    total_trials = args.trials * 4
    print(f"\n{total_trials} batched CPA trials in {elapsed:.2f} s "
          f"({total_trials / elapsed:.0f} trials/s)")

    print("\nMasking robustness at 80,000 cycles (batched sweeps):")
    assessment = assess_detection_robustness(
        sequence,
        watermark_amplitude_w=amplitude_w,
        base_noise_sigma_w=noise_w,
        attack=MaskingAttack(num_cycles=80_000, trials_per_point=5),
        seed=2,
    )
    print(assessment.noise_study.to_text())
    print(assessment.starvation_study.to_text())
    print(assessment.summary())


if __name__ == "__main__":
    main()
