#!/usr/bin/env python3
"""Quickstart: embed a clock-modulation watermark and detect it with CPA.

Walks the full pipeline of the paper in a few dozen lines:

1. build the proposed watermark (12-bit LFSR WGC modulating the clock gates
   of a 1,024-register clock-gated bank, as on the test chips);
2. embed it in the chip I model (Cortex-M0-class SoC running a
   Dhrystone-like workload);
3. measure the chip's supply power through the modelled bench setup
   (270 mOhm shunt, differential probe, 500 MS/s oscilloscope, 50 samples
   averaged per 10 MHz clock cycle);
4. run Correlation Power Analysis over all 4,095 rotations of the
   watermark sequence and report the detection decision.

Run:  python examples/quickstart.py [--cycles 300000]
"""

from __future__ import annotations

import argparse

from repro import (
    AcquisitionCampaign,
    ClockModulationWatermark,
    CPADetector,
    ExperimentConfig,
    SpreadSpectrum,
)
from repro.soc import build_chip_one


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cycles",
        type=int,
        default=300_000,
        help="number of clock cycles to acquire (the paper uses 300,000)",
    )
    parser.add_argument("--seed", type=int, default=42, help="noise seed for reproducibility")
    args = parser.parse_args()

    config = ExperimentConfig.paper_defaults()

    # 1. The proposed watermark architecture (Fig. 1(b) / Fig. 4(a)).
    watermark = ClockModulationWatermark.from_config(config.watermark)
    print(f"watermark sequence period: {watermark.sequence_period} cycles")
    print(f"registers added by the watermark: {watermark.total_register_count()}")

    # 2. Chip I: Cortex-M0-class SoC running the Dhrystone-like workload.
    chip = build_chip_one(watermark=watermark)
    power = chip.total_power(args.cycles, watermark_active=True, seed=args.seed,
                             watermark_phase_offset=1234)
    print(f"simulated {args.cycles} cycles; mean chip power = {power.average_power_w * 1e3:.2f} mW")

    # 3. The measurement chain produces the per-cycle power vector Y.
    campaign = AcquisitionCampaign(config.measurement)
    measured = campaign.measure(power, seed=args.seed)
    print(f"measured trace: mean = {measured.mean_power_w * 1e3:.2f} mW, "
          f"per-cycle sigma = {measured.std_power_w * 1e3:.2f} mW")

    # 4. CPA over every rotation of the watermark sequence.
    detector = CPADetector(config.detection)
    result = detector.detect(chip.watermark_sequence(), measured.values)
    spectrum = SpreadSpectrum("chip1 / watermark active", result.correlations)

    print()
    print(spectrum.render_ascii(width=72, height=10))
    print()
    print(result.summary())
    if result.detected:
        print("=> the embedded watermark was detected from the supply current alone.")
    else:
        print("=> no watermark detected (try more cycles).")


if __name__ == "__main__":
    main()
