#!/usr/bin/env python3
"""Removal-attack study (Section VI): robustness of the two architectures.

Embeds both watermark architectures into a structural model of the host SoC
and plays the third-party attacker:

* a *blind* structural attack that shortlists stand-alone, register-heavy
  sub-circuits that drive no functional logic (exactly what the baseline
  load circuit looks like) and excises them;
* an *informed* attack that removes the watermark instances outright, to
  measure the collateral damage on the host design.

Run:  python examples/removal_attack_study.py
"""

from __future__ import annotations

from repro.analysis.attacks import RemovalAttack, find_standalone_clusters
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.embedding import embed_baseline, embed_clock_modulation
from repro.experiments import run_robustness
from repro.soc.structure import build_soc_structure, clock_gate_paths


def describe_attack_surface() -> None:
    """Show what the attacker's cluster analysis sees for each architecture."""
    config = WatermarkConfig()

    baseline_host = build_soc_structure(name="soc_baseline")
    embed_baseline(baseline_host, config)
    baseline_netlist = baseline_host.flatten()

    clockmod_host = build_soc_structure(name="soc_clockmod")
    embed_clock_modulation(clockmod_host, clock_gate_paths(clockmod_host)[:4], config)
    clockmod_netlist = clockmod_host.flatten()

    for label, netlist in (("baseline", baseline_netlist), ("clock modulation", clockmod_netlist)):
        clusters = find_standalone_clusters(netlist)
        print(f"  [{label}] suspicious stand-alone clusters found: {len(clusters)}")
        for cluster in clusters:
            print(
                f"      cluster with {cluster.size} instances, {cluster.registers} registers "
                f"(drives functional logic: {cluster.drives_functional_logic})"
            )


def main() -> None:
    print("== Attacker's view of the RTL (stand-alone cluster analysis) ==")
    describe_attack_surface()
    print()

    print("== Removal attacks on both architectures ==")
    result = run_robustness()
    print(result.to_text())
    print()

    print("== Interpretation ==")
    print(
        "The baseline watermark (WGC + load circuit) forms an isolated cluster of\n"
        "shift registers: the blind attack finds and removes it completely, and the\n"
        "host design keeps working -- the watermark offers no resistance.\n"
        "The clock-modulation watermark shares the enable path of functional clock\n"
        "gates: the blind attack cannot isolate it, and even an informed removal\n"
        f"severs the clock-enable cone of "
        f"{len(result.clock_modulation.informed_attack.broken_functional_instances)} functional "
        "instances, impairing the system -- the improved robustness claimed in Section VI."
    )


if __name__ == "__main__":
    main()
