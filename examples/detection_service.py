#!/usr/bin/env python3
"""Detection-as-a-service tour: a live server, a client, and the paper trail.

Shows the serving layer (:mod:`repro.service`) end to end, entirely
in-process on an ephemeral localhost port:

1. start the HTTP service (``/verify``, ``/issue``, ``/healthz``,
   ``/metrics``) with a PoW difficulty and a fresh data dir;
2. ``/issue`` a watermark: the requester receives the full config, the
   ledger records only a salted commitment to the secret LFSR seed;
3. ``/verify`` a detection scenario twice -- the first request executes
   the pipeline, the second is a pure result-store hit with a
   byte-identical signed transcript;
4. re-verify the transcript's HMAC signature offline, from the wire JSON
   alone (no arrays, no server);
5. integrity-check the append-only hash-chained operation ledger.

Run:  python examples/detection_service.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.service.client import ServiceClient, result_from
from repro.service.ledger import Ledger
from repro.service.server import ServiceConfig, build_server

SCENARIO = "fig5/chip1-active"


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    config = ServiceConfig(port=0, data_dir=data_dir, difficulty=8)
    server = build_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    banner(f"1. service up at {server.url}")
    client = ServiceClient(server.url, client_id="example@local")
    health = client.healthz()
    print(f"protocol v{health['protocol_version']}, "
          f"PoW difficulty {health['difficulty']} bits, "
          f"{len(health['scenarios'])} scenarios registered")

    banner("2. /issue: embed a watermark, commit to its seed")
    issued = client.issue(scenario=SCENARIO)
    print(f"requester got the full config (seed included): "
          f"lfsr_seed={issued['watermark']['lfsr_seed']:#x}")
    print(f"transcript + ledger carry only the commitment: "
          f"{issued['commitment'][:24]}...")
    print(f"anchored at ledger index {issued['ledger']['index']}")

    banner("3. /verify twice: compute once, serve from the store after")
    first = client.verify(scenario=SCENARIO, overrides={"quick": True})
    second = client.verify(scenario=SCENARIO, overrides={"quick": True})
    transcript = first["transcript"]
    print(f"statistic={transcript['statistic']:.2f}  "
          f"decision={transcript['decision']}  "
          f"spec_hash={transcript['spec_hash'][:12]}")
    print(f"first request cache_hit={first['cache_hit']}, "
          f"second cache_hit={second['cache_hit']}")
    identical = (first["signature"] == second["signature"]
                 and first["transcript"] == second["transcript"])
    print(f"signed transcripts byte-identical: {identical}")

    banner("4. offline re-verification (wire JSON only, no server)")
    key_path = data_dir / "hmac.key"
    print(f"signature valid against {key_path.name}: "
          f"{ServiceClient.verify_transcript(second, key_path)}")
    result = result_from(second)
    print(f"rebuilt result: {result.name}, ok={result.ok}, "
          f"arrays_stripped={result.arrays_stripped} "
          f"(scalars and provenance bit-exact)")

    banner("5. the paper trail: hash-chained operation ledger")
    metrics = client.metrics()
    print(f"requests={metrics['requests']['total']}  "
          f"cache hit rate={metrics['cache']['hit_rate']:.0%}  "
          f"p50={metrics['latency_ms'].get('p50', 0):.1f} ms")
    server.shutdown()
    server.server_close()
    ledger = Ledger(data_dir / "ledger.jsonl")
    problems = ledger.verify()
    print(f"ledger: {ledger.count} record(s), "
          f"verify -> {len(problems)} problem(s)")
    print(f"tip digest {ledger.tip_digest[:24]}... "
          f"(also try: python -m repro serve ledger verify "
          f"--data-dir {data_dir})")


if __name__ == "__main__":
    main()
