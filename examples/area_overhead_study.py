#!/usr/bin/env python3
"""Area and power overhead study (Tables I and II plus a sizing sweep).

Shows how the proposed clock-modulation watermark removes the load circuit
that dominates the state-of-the-art watermark's cost:

* Table I -- power of the clock-modulated redundant bank as the number of
  data-switching registers grows (clock-buffer power dominates);
* Table II -- how many load registers the baseline needs for a detectable
  power signature at various system sizes, and the resulting area-overhead
  reduction of the proposed technique;
* a sweep showing the watermark's relative area overhead for IP blocks of
  different sizes, for both architectures.

Run:  python examples/area_overhead_study.py
"""

from __future__ import annotations

from repro.analysis.area import AreaModel
from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.experiments import run_table1, run_table2


def relative_overhead_sweep() -> str:
    """Watermark area relative to host IP size, for both architectures."""
    model = AreaModel()
    config = WatermarkConfig(use_test_chip_wgc=False)
    baseline = BaselineWatermark.from_config(
        WatermarkConfig(load_registers=576, use_test_chip_wgc=False)
    )
    proposed = ClockModulationWatermark.reusing_ip_block(modulated_registers=1024, config=config)

    lines = [
        f"{'host IP registers':>18} {'baseline overhead':>18} {'clock-mod overhead':>19}",
    ]
    for system_registers in (5_000, 20_000, 100_000, 500_000):
        system_cells = {"dff": system_registers, "comb": system_registers * 6}
        baseline_overhead = model.relative_overhead(baseline.added_cell_inventory(), system_cells)
        proposed_overhead = model.relative_overhead(proposed.added_cell_inventory(), system_cells)
        lines.append(
            f"{system_registers:>18,} {baseline_overhead * 100:>17.3f}% {proposed_overhead * 100:>18.4f}%"
        )
    return "\n".join(lines)


def main() -> None:
    print("== Table I: power of the placed-and-routed load circuit ==")
    table1 = run_table1()
    print(table1.to_text())
    print(f"(WGC dynamic power: {table1.wgc_dynamic_w * 1e6:.1f} uW)")
    print()

    print("== Table II: load circuit implementation costs ==")
    table2 = run_table2()
    print(table2.to_text())
    print()

    print("== Watermark area relative to host IP size ==")
    print(relative_overhead_sweep())
    print()
    print(
        "The proposed technique keeps only the watermark generation circuit, so its\n"
        "overhead is independent of the host system size -- the paper's 98% reduction\n"
        "at the 1.5 mW operating point grows towards 100% for larger systems."
    )


if __name__ == "__main__":
    main()
