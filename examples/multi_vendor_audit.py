#!/usr/bin/env python3
"""Multi-vendor IP audit: several clock-modulation watermarks on one die.

The paper points out that different top-level IP modules or sub-modules can
be modulated independently. In a realistic SoC each IP vendor embeds its own
watermark (with its own LFSR, so the sequences are distinguishable), and
auditing a finished product means testing the single measured supply-current
trace against every vendor's model sequence.

This example builds a die carrying watermarks from two vendors plus the
usual Cortex-M0-class background activity, measures it once, and shows that:

* both vendors' watermarks are found in the combined trace;
* a vendor whose IP is *not* on the die is correctly reported as absent.

Run:  python examples/multi_vendor_audit.py [--cycles 150000]
"""

from __future__ import annotations

import argparse

from repro.core.config import ExperimentConfig
from repro.core.multi import MultiWatermarkSystem
from repro.measurement.acquisition import AcquisitionCampaign
from repro.power.estimator import PowerEstimator
from repro.power.trace import PowerTrace
from repro.soc.chip import build_chip_one


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=150_000)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    config = ExperimentConfig.paper_defaults()
    estimator = PowerEstimator.at_nominal()

    # Three vendors license IP to the integrator, but only two of the blocks
    # end up on this die.
    system = MultiWatermarkSystem.with_distinct_lfsr_widths(
        ["cpu_vendor", "dsp_vendor", "crypto_vendor"], widths=[12, 11, 10]
    )
    on_die = ["cpu_vendor", "dsp_vendor"]

    print("vendors with registered watermarks:", [v.vendor for v in system.vendors])
    print("vendors actually integrated on the die:", on_die)
    print()

    # Background: the usual chip I system activity (without its own watermark).
    chip = build_chip_one(watermark=None)
    background = chip.background_power(args.cycles, seed=args.seed)
    watermarks = system.combined_power_trace(
        estimator,
        args.cycles,
        active_vendors=on_die,
        phase_offsets={"cpu_vendor": 3100, "dsp_vendor": 450},
    )
    total = PowerTrace(
        name="die_total",
        clock=background.clock,
        power_w=background.power_w + watermarks.power_w,
        voltage_v=background.voltage_v,
    )

    measured = AcquisitionCampaign(config.measurement).measure(total, seed=args.seed)
    print(
        f"measured {args.cycles} cycles: mean power {measured.mean_power_w * 1e3:.2f} mW, "
        f"per-cycle sigma {measured.std_power_w * 1e3:.1f} mW"
    )
    print()

    print("audit results (one CPA run per vendor sequence):")
    results = system.audit(measured.values, config.detection)
    for vendor, cpa in results.items():
        expected = "on die" if vendor in on_die else "not on die"
        print(f"  {vendor:<14} [{expected:>10}]  {cpa.summary()}")

    detected = set(system.detected_vendors(measured.values, config.detection))
    print()
    if detected == set(on_die):
        print("=> audit verdict matches the ground truth: integrated IP detected, absent IP cleared.")
    else:
        print(f"=> audit verdict {sorted(detected)} differs from ground truth {sorted(on_die)}.")


if __name__ == "__main__":
    main()
