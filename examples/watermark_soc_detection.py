#!/usr/bin/env python3
"""Silicon-measurement scenario: chips I and II, active and disabled watermark.

Reproduces the experimental campaign of Section IV on the simulated chips:

* chip I  -- Cortex-M0-class SoC (plus peripherals) running a Dhrystone-like
  workload, watermark embedded as a macro;
* chip II -- the same SoC plus a clocked-but-idle dual-core Cortex-A5-class
  subsystem with caches contributing background noise;

each measured with the watermark circuit enabled and disabled (the paper's
control experiment), followed by a repeated-measurement campaign that mirrors
the 100-acquisition box plots of Fig. 6.

Run:  python examples/watermark_soc_detection.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.core.config import ExperimentConfig, MeasurementConfig
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use a reduced acquisition (60,000 cycles, 20 repetitions) for a fast demo",
    )
    args = parser.parse_args()

    if args.quick:
        config = ExperimentConfig(
            measurement=MeasurementConfig(
                num_cycles=60_000, transient_noise_floor_w=0.020, transient_noise_fraction=0.4
            )
        )
        repetitions = 20
    else:
        config = ExperimentConfig.paper_defaults()
        repetitions = 100

    print("== Spread spectra (Fig. 5 scenario) ==")
    fig5 = run_fig5(config=config)
    print(fig5.to_text())
    print()
    for key in sorted(fig5.panels):
        panel = fig5.panels[key]
        if panel.watermark_active:
            print(panel.spectrum.render_ascii(width=72, height=8))
            print()

    print(f"== Repeatability over {repetitions} acquisitions (Fig. 6 scenario) ==")
    fig6 = run_fig6(repetitions=repetitions, config=config)
    print(fig6.to_text())


if __name__ == "__main__":
    main()
